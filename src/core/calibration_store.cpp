#include "core/calibration_store.h"

#include <cstring>

#include "util/crc.h"

namespace distscroll::core {

namespace {

void put_float(std::vector<std::uint8_t>& out, double value) {
  const auto f = static_cast<float>(value);
  std::uint8_t bytes[4];
  std::memcpy(bytes, &f, 4);
  out.insert(out.end(), bytes, bytes + 4);
}

float get_float(std::span<const std::uint8_t> in, std::size_t offset) {
  float f;
  std::memcpy(&f, in.data() + offset, 4);
  return f;
}

}  // namespace

util::Seconds CalibrationStore::save(hw::Eeprom& eeprom, const CalibrationResult& calibration) {
  std::vector<std::uint8_t> record;
  record.reserve(kRecordSize);
  record.push_back('D');
  record.push_back('S');
  record.push_back(kVersion);
  const auto& params = calibration.curve.params();
  put_float(record, params.a);
  put_float(record, params.k);
  put_float(record, params.c);
  put_float(record, calibration.usable_near.value);
  put_float(record, calibration.usable_far.value);
  record.push_back(util::crc8(record));
  return eeprom.write_block(kBaseAddress, record);
}

std::optional<CalibrationResult> CalibrationStore::load(const hw::Eeprom& eeprom) {
  const auto record = eeprom.read_block(kBaseAddress, kRecordSize);
  if (record[0] != 'D' || record[1] != 'S') return std::nullopt;
  if (record[2] != kVersion) return std::nullopt;
  const std::uint8_t crc = util::crc8({record.data(), kRecordSize - 1});
  if (crc != record.back()) return std::nullopt;

  SensorCurve::Params params;
  params.a = get_float(record, 3);
  params.k = get_float(record, 7);
  params.c = get_float(record, 11);
  CalibrationResult result;
  result.curve = SensorCurve(params);
  result.usable_near = util::Centimeters{get_float(record, 15)};
  result.usable_far = util::Centimeters{get_float(record, 19)};
  result.r_squared = 1.0;  // quality metrics are not persisted
  result.log_log_r_squared = 1.0;
  return result;
}

}  // namespace distscroll::core
