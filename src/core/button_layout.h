// Button layout designs under study (paper Sections 4.5 / 6).
//
// The prototype has three buttons laid out for right-handed use; the
// authors "are currently experimenting with the number and position of
// the buttons", favouring either "a two button design with the buttons
// slidable along the sides" or "one large button that can easily be
// pressed independently of which hand is used".
//
// A layout determines, per user hand, how awkward each logical action's
// button is (miss-probability and press-time multipliers the study
// applies), and whether BACK is a physical button or a long-press of
// the single large button.
#pragma once

#include <cstdint>

namespace distscroll::core {

enum class Handedness : std::uint8_t { Right, Left };

enum class ButtonLayout : std::uint8_t {
  /// The prototype: one thumb button top-right, two finger buttons on
  /// the left side. "The layout provides a convenient right-handed
  /// usage" — and an awkward left-handed one.
  ThreeButtonRight,
  /// Two buttons slidable along the sides, configured per hand: both
  /// hands get thumb-reach buttons.
  SlidableTwoButton,
  /// One large button, hand-agnostic; short press = SELECT, long press
  /// = BACK (no third action: chunk paging folds onto double press).
  SingleLargeButton,
};

enum class ButtonAction : std::uint8_t { Select, Back, Aux };

struct ButtonErgonomics {
  double miss_multiplier = 1.0;   // on the profile's miss probability
  double time_multiplier = 1.0;   // on the profile's press time
};

/// Ergonomics of performing `action` on `layout` with `hand`.
[[nodiscard]] constexpr ButtonErgonomics ergonomics(ButtonLayout layout, Handedness hand,
                                                    ButtonAction action) {
  switch (layout) {
    case ButtonLayout::ThreeButtonRight:
      if (hand == Handedness::Right) {
        // Thumb select is ideal; finger buttons fine.
        return action == ButtonAction::Select ? ButtonErgonomics{0.8, 0.95}
                                              : ButtonErgonomics{1.0, 1.0};
      }
      // Left hand: the thumb lands on nothing, fingers curl around to
      // the "wrong" side — slow and slippery for every action.
      return action == ButtonAction::Select ? ButtonErgonomics{2.5, 1.5}
                                            : ButtonErgonomics{1.8, 1.3};
    case ButtonLayout::SlidableTwoButton:
      // Slid to the user's side: near-ideal for both hands; the third
      // action is missing, so Aux maps to a chorded press (slower).
      if (action == ButtonAction::Aux) return ButtonErgonomics{1.5, 1.8};
      return ButtonErgonomics{0.9, 1.0};
    case ButtonLayout::SingleLargeButton:
      switch (action) {
        case ButtonAction::Select:
          // A big target: hard to miss even with gloves.
          return ButtonErgonomics{0.4, 1.0};
        case ButtonAction::Back:
          // Long press: reliable but inherently slow (hold time).
          return ButtonErgonomics{0.5, 2.6};
        case ButtonAction::Aux:
          // Double press.
          return ButtonErgonomics{0.8, 2.0};
      }
      return ButtonErgonomics{};
  }
  return ButtonErgonomics{};
}

/// Long-press classification for the single-button layout: hold
/// durations at or above the threshold mean BACK.
struct LongPressConfig {
  double threshold_s = 0.45;
};

}  // namespace distscroll::core
