// Expert fast-scroll using the < 4 cm sensor branch.
//
// Paper, Section 4.2: "It is also possible — because of the much faster
// declining sensor values between 0 and 4 cms — that this sensor
// characteristic is exploited by advanced users for faster scrolling or
// browsing."
//
// Physically, moving closer than the calibrated near bound first drives
// the output ABOVE the nearest island's count range (the response peak
// sits around ~3 cm). That over-range region is unambiguous, so the
// firmware can treat it as a turbo zone: while the reading stays above
// the threshold, emit auto-repeat steps toward the near end of the menu.
// Going even closer (below the peak) folds the output back into the
// normal range — the genuine ambiguity the paper tolerates; the turbo
// detector deliberately does nothing there, and the mis-selection risk
// is part of the reproduced behaviour.
#pragma once

#include <cstdint>

#include "util/units.h"

namespace distscroll::core {

class FastScrollMode {
 public:
  struct Config {
    /// Counts above this mean "closer than the calibrated near bound".
    /// Typically islands.front().high + margin.
    std::uint16_t threshold_counts = 0;
    /// Auto-repeat period while in the turbo zone.
    util::Seconds repeat_period{0.12};
  };

  explicit FastScrollMode(Config config) : config_(config) {}

  [[nodiscard]] bool active() const { return active_; }
  [[nodiscard]] const Config& config() const { return config_; }

  /// Feed each ADC sample; returns the number of repeat steps to apply
  /// this sample (0 when inactive or between repeats). Steps are in the
  /// "toward the user" scroll direction; the caller applies direction
  /// mapping.
  int on_sample(util::Seconds now, util::AdcCounts counts);

  /// Same, with the zone decision made externally (e.g. the dual-sensor
  /// resolver's unambiguous "folded" signal).
  int on_zone(util::Seconds now, bool in_zone);

  void reset() {
    active_ = false;
  }

 private:
  Config config_;
  bool active_ = false;
  util::Seconds last_step_{-1.0};
};

}  // namespace distscroll::core
