#include "core/dual_sensor.h"

#include <algorithm>
#include <cmath>

namespace distscroll::core {

std::optional<util::Centimeters> DualRangeResolver::fold_branch_distance(util::Volts v) const {
  // The rising branch is linear from (0, dead_zone_volts) to
  // (peak_cm, V(peak)) — the same shape Gp2d120Model simulates.
  const double peak_volts =
      primary_.volts_at(util::Centimeters{config_.peak_cm}).value;
  if (v.value < config_.dead_zone_volts || v.value > peak_volts) return std::nullopt;
  const double t = (v.value - config_.dead_zone_volts) / (peak_volts - config_.dead_zone_volts);
  return util::Centimeters{t * config_.peak_cm};
}

std::optional<DualRangeResolver::Resolution> DualRangeResolver::resolve(
    util::AdcCounts primary, util::AdcCounts secondary) const {
  const double vref = primary_.params().vref;
  const util::Volts v1{primary.value * vref / 1023.0};

  struct Candidate {
    double distance_cm;
    bool folded;
  };
  Candidate candidates[2];
  int n = 0;

  // Monotone-branch candidate (the normal interpretation).
  const double far_d = primary_.distance_at(v1).value;
  if (far_d >= config_.peak_cm) candidates[n++] = {far_d, false};

  // Fold-back candidate (device too close).
  if (const auto near_d = fold_branch_distance(v1)) {
    candidates[n++] = {near_d->value, true};
  }
  if (n == 0) return std::nullopt;

  // Pick the candidate whose predicted secondary reading matches best.
  // The secondary sits `offset_cm` deeper, so for any candidate d it
  // sees d + offset — beyond its own peak for every d >= 0 when
  // offset > peak, i.e. always on the monotone branch.
  std::optional<Resolution> best;
  for (int i = 0; i < n; ++i) {
    const double d2 = candidates[i].distance_cm + config_.offset_cm;
    const double predicted = secondary_.counts_at(util::Centimeters{d2}).value;
    const double residual = std::abs(predicted - static_cast<double>(secondary.value));
    if (!best || residual < best->residual_counts) {
      best = Resolution{util::Centimeters{candidates[i].distance_cm}, candidates[i].folded,
                        residual};
    }
  }
  if (best && best->residual_counts > config_.max_residual_counts) return std::nullopt;
  return best;
}

}  // namespace distscroll::core
