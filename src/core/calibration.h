// Sensor calibration: fitting the idealised curve through measured ADC
// samples — the procedure behind the paper's Figures 4 and 5, and the
// prerequisite for island construction ("These properties ... were
// verified in different light conditions and with different clothing").
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "core/sensor_curve.h"
#include "util/stats.h"
#include "util/units.h"

namespace distscroll::core {

struct CalibrationSample {
  util::Centimeters distance;
  util::AdcCounts counts;
};

struct CalibrationResult {
  SensorCurve curve;
  double r_squared = 0.0;          // quality of the hyperbolic fit (Fig. 4)
  double log_log_r_squared = 0.0;  // straightness on log axes (Fig. 5)
  util::Centimeters usable_near{4.0};
  util::Centimeters usable_far{30.0};
};

/// Fit the curve to sweep samples; samples below `min_fit_distance` are
/// excluded (they sit on the non-monotonic rising branch).
[[nodiscard]] CalibrationResult calibrate(std::span<const CalibrationSample> samples,
                                          double vref = 5.0,
                                          util::Centimeters min_fit_distance = util::Centimeters{4.0});

/// Workload helper: perform a sweep against a provider of noisy counts
/// (e.g. sensor+ADC in the loop) and return the samples, `repeats`
/// readings averaged per point.
[[nodiscard]] std::vector<CalibrationSample> sweep(
    util::Centimeters from, util::Centimeters to, double step_cm,
    // ds-lint: allow(no-std-function-hot-path) calibration is a one-shot workflow, not a sample path
    const std::function<util::AdcCounts(util::Centimeters)>& read, int repeats = 4);

}  // namespace distscroll::core
