// The firmware's model of the GP2D120 response.
//
// The paper (Section 4.2): "We calculated the expected sensor values by
// inserting the distance ... in the function in Figure 5. This function
// is the connection between the sensor characteristic provided by Sharp
// and the analog voltages effectively measured by the Smart-Its."
//
// SensorCurve is exactly that function: the idealised V(d) = a/(d+k)+c
// hyperbola, with conversion to/from ADC counts and the inverse used to
// place islands at perceptually equal distance spacing.
#pragma once

#include <algorithm>

#include "util/units.h"

namespace distscroll::core {

class SensorCurve {
 public:
  struct Params {
    double a = 10.4;  // volt*cm
    double k = 0.6;   // cm
    double c = 0.0;   // volt
    double vref = 5.0;
  };

  constexpr SensorCurve() = default;
  constexpr explicit SensorCurve(Params params) : params_(params) {}

  [[nodiscard]] constexpr const Params& params() const { return params_; }

  /// Expected analog voltage at a distance (monotone branch only:
  /// callers must stay at or beyond the sensor's response peak).
  [[nodiscard]] util::Volts volts_at(util::Centimeters d) const {
    return util::Volts{params_.a / (d.value + params_.k) + params_.c};
  }

  /// Expected ADC counts at a distance.
  [[nodiscard]] util::AdcCounts counts_at(util::Centimeters d) const {
    const double v = volts_at(d).value;
    const double counts = std::clamp(v / params_.vref * 1023.0, 0.0, 1023.0);
    return util::AdcCounts{static_cast<std::uint16_t>(counts + 0.5)};
  }

  /// Inverse: distance for a voltage (on the monotone branch).
  [[nodiscard]] util::Centimeters distance_at(util::Volts v) const {
    const double denom = std::max(1e-9, v.value - params_.c);
    return util::Centimeters{params_.a / denom - params_.k};
  }

  [[nodiscard]] util::Centimeters distance_at(util::AdcCounts counts) const {
    return distance_at(util::Volts{counts.value * params_.vref / 1023.0});
  }

 private:
  Params params_;
};

}  // namespace distscroll::core
