// The paper's sensor-value-to-entry mapping (Section 4.2).
//
// "We first chose how many entities lie in a given data structure and
//  then distributed these entities as described over the sensor range.
//  We calculated the expected sensor values by inserting the distance
//  ... in the function in Figure 5. We then defined islands around the
//  calculated sensor values in such a manner that in this interval a
//  specific entry is selected. These islands do not cover the complete
//  spectrum of possible values, there are intervals in which no entry is
//  selected. By this, we provide the user with the perception that the
//  entries are equally spaced on the complete scrollable distance."
//
// Implementation: entries are placed at equally spaced *distances*
// within [near, far]; each entry's island is the expected-count interval
// around its centre count, shrunk by `coverage` (< 1 leaves the paper's
// selection-free gaps). Because the sensor curve is hyperbolic, islands
// are wide (in counts) near the body and narrow far away — the
// non-linear placement that makes spacing *feel* uniform in cm.
//
// The mapper runs in "firmware" conditions: integer ADC counts in, an
// index (or no-change) out, O(log N) lookup over a table that fits the
// PIC's RAM budget.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/sensor_curve.h"
#include "util/units.h"

namespace distscroll::core {

class IslandMapper {
 public:
  struct Config {
    util::Centimeters near{4.0};   // the paper's predicted usage range
    util::Centimeters far{30.0};
    /// Fraction of each inter-centre gap covered by the island
    /// (0 < coverage <= 1; 1.0 makes islands touch, eliminating the
    /// selection-free intervals).
    double coverage = 0.6;
    /// Extra hysteresis: once inside an island, the reading must leave
    /// the island *plus* this many counts before the selection can
    /// change. 0 reproduces the paper's plain islands.
    std::uint16_t hysteresis_counts = 0;
  };

  /// Builds islands for `entries` menu entries using the (calibrated)
  /// sensor curve. Precondition: entries >= 1, near < far.
  IslandMapper(const SensorCurve& curve, std::size_t entries, Config config);

  /// Rebuild the table in place for a new entry count/config. Reuses the
  /// island/centre storage (no allocation once capacity has grown to the
  /// largest menu level seen) — the session-reuse path for menu-level
  /// changes and pooled devices.
  void rebuild(const SensorCurve& curve, std::size_t entries, Config config);

  [[nodiscard]] std::size_t entries() const { return islands_.size(); }
  [[nodiscard]] const Config& config() const { return config_; }

  struct Island {
    std::uint16_t low;     // inclusive ADC-count bounds; low > high marks an
    std::uint16_t high;    // empty island (entry unresolvable by the ADC)
    std::uint16_t centre;  // expected counts at the entry's centre distance
  };
  [[nodiscard]] const std::vector<Island>& islands() const { return islands_; }

  /// The stateless lookup, reference implementation: binary search over
  /// the island table. Kept as the oracle the LUT is property-tested
  /// against; the hot path uses lookup_lut().
  [[nodiscard]] std::optional<std::size_t> lookup(util::AdcCounts counts) const;

  /// O(1) lookup through the 1024-entry counts→island table — exactly
  /// the table the PIC firmware would burn into flash (1 KB of 8-bit
  /// entry ids; we store 16-bit ids so >255-entry menus stay correct).
  [[nodiscard]] std::optional<std::size_t> lookup_lut(util::AdcCounts counts) const {
    if (counts.value >= kLutSize) return std::nullopt;
    const std::uint16_t id = lut_[counts.value];
    if (id == kLutGap) return std::nullopt;
    return static_cast<std::size_t>(id);
  }

  /// One table probe, full verdict: the stateful select() result plus
  /// the facts a caller would otherwise pay a second lookup() for. The
  /// firmware hot path (ScrollController::on_sample) uses this so gap
  /// statistics come for free from the single probe.
  struct Probe {
    /// New selection (may equal `current`); nullopt only before any
    /// island was ever hit.
    std::optional<std::size_t> selection;
    /// counts fell in no island: selection was carried over.
    bool in_gap = false;
    /// The binary search actually ran (false = hysteresis held the
    /// current island without touching the table — cheaper in cycles).
    bool table_probed = true;
  };
  [[nodiscard]] Probe probe(util::AdcCounts counts, std::optional<std::size_t> current) const;

  /// The stateful firmware query: applies hysteresis relative to the
  /// currently selected entry. Returns the new selection (which may be
  /// unchanged); nullopt means "in a gap — keep whatever you had".
  /// Convenience wrapper over probe().
  [[nodiscard]] std::optional<std::size_t> select(util::AdcCounts counts,
                                                  std::optional<std::size_t> current) const;

  /// Firmware cost of a hysteresis short-circuit (two 16-bit compares);
  /// charged instead of lookup_cost_cycles() when probe() skips the
  /// table.
  [[nodiscard]] static constexpr std::uint64_t hysteresis_hold_cycles() { return 8; }

  /// Fraction of the count spectrum [far-counts, near-counts] covered by
  /// islands (for the ablation bench).
  [[nodiscard]] double coverage_fraction() const;

  /// Distance of an entry's centre (for display/debug).
  [[nodiscard]] util::Centimeters centre_distance(std::size_t entry) const;

  /// Approximate firmware cost of one lookup in PIC instruction cycles:
  /// one flash table fetch (TBLPTR setup + TBLRD*), independent of the
  /// entry count now that the mapping is a burned-in LUT.
  [[nodiscard]] std::uint64_t lookup_cost_cycles() const;

  /// The binary-search cost the LUT replaced (reference implementation;
  /// kept so the microbench can report the saving).
  [[nodiscard]] std::uint64_t search_cost_cycles() const;

  static constexpr std::size_t kLutSize = 1024;   // full 10-bit ADC range
  static constexpr std::uint16_t kLutGap = 0xFFFF;

 private:
  Config config_;
  std::vector<Island> islands_;  // index 0 = nearest entry
  std::vector<util::Centimeters> centres_;
  std::vector<double> centre_counts_;  // rebuild() scratch (reused capacity)
  std::array<std::uint16_t, kLutSize> lut_{};  // counts -> entry id / kLutGap
  double spectrum_high_ = 1023.0;  // expected counts at `near`
  double spectrum_low_ = 0.0;      // expected counts at `far`
};

}  // namespace distscroll::core
