#include "core/distscroll_device.h"

#include <algorithm>
#include <cstdio>

#include "obs/stage_timer.h"
#include "util/hot_path.h"

namespace distscroll::core {

namespace {
constexpr std::uint8_t kTopDisplayAddress = 0x3C;
constexpr std::uint8_t kBottomDisplayAddress = 0x3D;
// ADC conversion busy-wait at 10 MIPS (~44 us) in instruction cycles.
constexpr std::uint64_t kAdcCycles = 440;
constexpr std::uint64_t kButtonScanCycles = 12;
constexpr std::uint64_t kRedrawCycles = 900;  // formatting + I2C byte pumping
constexpr double kRangerDrawMa = 33.0;        // GP2D120 typ. supply current

// Default providers until the study wires a hand/posture model in: the
// device rests at a mid-range distance, held level.
util::Centimeters default_distance(util::Seconds) { return util::Centimeters{17.0}; }
util::Radians default_tilt(util::Seconds) { return util::Radians{0.0}; }
}  // namespace

DistScrollDevice::DistScrollDevice(Config config, const menu::MenuNode& menu_root,
                                   sim::EventQueue& queue, sim::Rng rng)
    : config_(config),
      queue_(&queue),
      board_(config.board, queue, rng.fork(1)),
      ranger_(config.sensor, rng.fork(2)),
      secondary_ranger_(config.sensor, rng.fork(20)),
      accel_(config.accel, rng.fork(3)),
      top_driver_(board_.i2c(), kTopDisplayAddress),
      bottom_driver_(board_.i2c(), kBottomDisplayAddress),
      pot_({}, rng.fork(4)),
      menu_root_(&menu_root),
      cursor_(menu_root),
      mapper_(config.curve, 1, config.islands),
      controller_(mapper_, config.scroll) {
  // --- one-time wiring (per board object, survives session resets) ------
  board_.i2c().attach(kTopDisplayAddress, &top_panel_);
  board_.i2c().attach(kBottomDisplayAddress, &bottom_panel_);

  // All five ADC channels are wired unconditionally — the parts are on
  // the board whether or not a session's config samples them, and an
  // unsampled channel draws nothing from the noise stream. The sources
  // are non-owning delegates: context is the device itself.
  ranger_channel_ = board_.adc().attach(hw::AnalogSource(this, [](void* ctx, util::Seconds now) {
    auto* self = static_cast<DistScrollDevice*>(ctx);
    return self->ranger_.output(self->distance_provider_(now), now);
  }));
  accel_x_channel_ = board_.adc().attach(hw::AnalogSource(this, [](void* ctx, util::Seconds now) {
    auto* self = static_cast<DistScrollDevice*>(ctx);
    return self->accel_.output_x(self->tilt_provider_(now));
  }));
  accel_y_channel_ = board_.adc().attach(hw::AnalogSource(this, [](void* ctx, util::Seconds) {
    return static_cast<DistScrollDevice*>(ctx)->accel_.output_y(util::Radians{0.0});
  }));
  pot_channel_ = board_.adc().attach(hw::AnalogSource(this, [](void* ctx, util::Seconds) {
    return static_cast<DistScrollDevice*>(ctx)->pot_.output();
  }));
  // The second GP2D120, recessed by offset_cm in the case: it sees the
  // same target farther away, always on the monotone branch.
  secondary_channel_ = board_.adc().attach(hw::AnalogSource(this, [](void* ctx, util::Seconds now) {
    auto* self = static_cast<DistScrollDevice*>(ctx);
    const double d = self->distance_provider_(now).value + self->config_.dual_sensor.offset_cm;
    return self->secondary_ranger_.output(util::Centimeters{d}, now);
  }));

  for (std::size_t pin = 0; pin < 3; ++pin) {
    buttons_.push_back(
        std::make_unique<input::Button>(config_.button, board_.gpio(), pin, queue, rng.fork(10 + pin)));
    debouncers_.emplace_back();
    button_ctx_[pin] = ButtonCtx{this, pin};
  }
  // All debounced edges funnel through on_button_edge: one place that
  // traces the edge and dispatches per the configured layout — and the
  // same entry point trace replay injects recorded edges into.
  for (std::size_t i = 0; i < debouncers_.size(); ++i) {
    debouncers_[i].on_press(input::Debouncer::Callback(&button_ctx_[i], [](void* ctx) {
      auto* c = static_cast<ButtonCtx*>(ctx);
      c->device->on_button_edge(c->index, true);
    }));
    debouncers_[i].on_release(input::Debouncer::Callback(&button_ctx_[i], [](void* ctx) {
      auto* c = static_cast<ButtonCtx*>(ctx);
      c->device->on_button_edge(c->index, false);
    }));
  }

  // Battery consumers beyond the base board: ranger (GP2D120 typ. 33 mA)
  // and the two displays.
  sensor_draw_ = board_.battery().add_consumer("gp2d120", kRangerDrawMa);
  display_draw_ = board_.battery().add_consumer(
      "displays", top_panel_.current_draw_ma() + bottom_panel_.current_draw_ma());

  // Firmware static memory: island table (4 B/entry, worst case 64
  // entries), frame buffer shadows are in the display controllers, not
  // the PIC.
  board_.mcu().reserve_ram("island-table", 256);
  board_.mcu().reserve_ram("fifos+state", 192);
  board_.mcu().reserve_flash("firmware", 14 * 1024);

  // Everything else is session state; the reset path IS the second half
  // of construction, so fresh-construct and pooled-reset cannot drift.
  reset(std::move(config), menu_root, rng);
}

void DistScrollDevice::reset(Config config, const menu::MenuNode& menu_root, sim::Rng rng) {
  config_ = std::move(config);
  board_.reset(config_.board, rng.fork(1));
  eeprom_.reset();
  ranger_.reset(config_.sensor, rng.fork(2));
  secondary_ranger_.reset(config_.sensor, rng.fork(20));
  accel_.reset(config_.accel, rng.fork(3));
  top_panel_.reset();
  bottom_panel_.reset();
  top_driver_.reset();
  bottom_driver_.reset();
  pot_.reset({}, rng.fork(4));
  for (std::size_t pin = 0; pin < buttons_.size(); ++pin) {
    buttons_[pin]->reset(config_.button, rng.fork(10 + pin));
  }
  for (auto& debouncer : debouncers_) debouncer.reset({});

  if (config_.use_dual_sensor) {
    DualRangeResolver::Config resolver_config = config_.dual_sensor;
    resolver_config.peak_cm = config_.sensor.peak_cm;
    resolver_config.dead_zone_volts = config_.sensor.dead_zone_volts;
    // ds-lint: allow(no-alloc-markers) optional in-place construct of value state; pinned heap-free by the pooled-reuse AllocGuard test
    dual_resolver_.emplace(config_.curve, config_.curve, resolver_config);
    if (!has_dual_ram_) {
      board_.mcu().reserve_ram("dual-sensor-state", 16);
      has_dual_ram_ = true;
    }
  } else {
    dual_resolver_.reset();
  }
  if (config_.enable_context_gate) {
    // ds-lint: allow(no-alloc-markers) optional in-place construct of value state; no heap
    context_gate_.emplace(config_.context_gate);
  } else {
    context_gate_.reset();
  }

  menu_root_ = &menu_root;
  cursor_.rebind(menu_root);

  distance_owner_ = nullptr;
  tilt_owner_ = nullptr;
  distance_provider_ = DistanceProvider(default_distance);
  tilt_provider_ = TiltProvider(default_tilt);
  counts_override_ = nullptr;
  tracer_ = nullptr;
  controller_.set_tracer(nullptr);

  // Restore the draws the previous session may have duty-cycled down or
  // re-trimmed (contrast pot path).
  board_.battery().set_draw(sensor_draw_, kRangerDrawMa);
  board_.battery().set_draw(display_draw_,
                            top_panel_.current_draw_ma() + bottom_panel_.current_draw_ma());

  powered_ = false;
  browned_out_ = false;
  calibrated_from_eeprom_ = false;
  firmware_timer_ = 0;
  button_timer_ = 0;
  ticks_since_telemetry_ = 0;
  sensor_idle_ = false;
  ticks_since_sample_ = 0;
  last_activity_s_ = 0.0;
  select_pressed_at_s_ = -1.0;
  telemetry_seq_ = 0;
  last_counts_ = util::AdcCounts{0};
  redraws_ = 0;
  selections_.clear();
  leaf_callback_ = nullptr;

  rebuild_mapping();
}

void DistScrollDevice::set_distance_provider(
    std::function<util::Centimeters(util::Seconds)> provider) {
  distance_owner_ = std::move(provider);
  distance_provider_ = DistanceProvider(distance_owner_);
}

void DistScrollDevice::set_distance_provider_ref(DistanceProvider provider) {
  distance_owner_ = nullptr;
  distance_provider_ = provider;
}

void DistScrollDevice::set_tilt_provider(std::function<util::Radians(util::Seconds)> provider) {
  tilt_owner_ = std::move(provider);
  tilt_provider_ = TiltProvider(tilt_owner_);
}

void DistScrollDevice::set_tilt_provider_ref(TiltProvider provider) {
  tilt_owner_ = nullptr;
  tilt_provider_ = provider;
}

void DistScrollDevice::set_surface(sensors::SurfaceProfile surface) {
  ranger_.set_surface(surface);
}

void DistScrollDevice::attach_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ != nullptr) tracer_->bind_clock(*queue_);
  ranger_.set_tracer(tracer);
  controller_.set_tracer(tracer);
}

void DistScrollDevice::on_button_edge(std::size_t index, bool pressed) {
  DS_TRACE(tracer_, obs::EventKind::ButtonEdge, static_cast<std::uint32_t>(index),
           pressed ? 1u : 0u);
  if (config_.button_layout == ButtonLayout::SingleLargeButton) {
    // One physical button: short press = SELECT on release, long press
    // (>= threshold) = BACK. The other buttons stay unused.
    if (index != 0) return;
    if (pressed) {
      select_pressed_at_s_ = queue_->now().value;
      return;
    }
    if (select_pressed_at_s_ < 0.0) return;
    const double held = queue_->now().value - select_pressed_at_s_;
    select_pressed_at_s_ = -1.0;
    if (held >= config_.long_press.threshold_s) {
      handle_back();
    } else {
      handle_select();
    }
    return;
  }
  if (!pressed) return;
  switch (index) {
    case 0: handle_select(); break;
    case 1: handle_back(); break;
    default: handle_aux(); break;
  }
}

void DistScrollDevice::power_on() {
  if (powered_) return;
  powered_ = true;
  firmware_timer_ = board_.mcu().start_timer(config_.firmware_tick, [this] { firmware_tick(); });
  button_timer_ = board_.mcu().start_timer(config_.button_tick, [this] { button_tick(); });
  redraw();
}

void DistScrollDevice::power_off() {
  if (!powered_) return;
  powered_ = false;
  board_.mcu().stop_timer(firmware_timer_);
  board_.mcu().stop_timer(button_timer_);
}

std::optional<std::size_t> DistScrollDevice::current_chunk() const {
  if (!chunker_) return std::nullopt;
  return chunker_->chunk();
}

void DistScrollDevice::rebuild_mapping() {
  const std::size_t level_size = std::max<std::size_t>(1, cursor_.level_size());
  std::size_t islands = level_size;
  chunker_.reset();
  zoom_.reset();

  switch (config_.long_menu) {
    case LongMenuStrategy::Plain:
      break;
    case LongMenuStrategy::Chunked:
      if (level_size > config_.chunk_size) {
        // ds-lint: allow(no-alloc-markers) optional in-place construct of value state; no heap
        chunker_.emplace(level_size, config_.chunk_size);
        chunker_->jump_to_chunk(chunker_->chunk_of(cursor_.index()));
        islands = chunker_->entries_in_chunk();
      }
      break;
    case LongMenuStrategy::SpeedZoom:
      if (level_size > config_.speed_zoom_islands) {
        islands = config_.speed_zoom_islands;
        // ds-lint: allow(no-alloc-markers) optional in-place construct of value state; no heap
        zoom_.emplace(level_size, islands, config_.speed_zoom);
      }
      break;
  }

  mapper_.rebuild(config_.curve, islands, config_.islands);
  controller_.reinitialize(config_.scroll);
  controller_.set_tracer(tracer_);
  if (config_.enable_fast_scroll) {
    FastScrollMode::Config fs = config_.fast_scroll;
    if (fs.threshold_counts == 0) {
      fs.threshold_counts = static_cast<std::uint16_t>(
          std::min(1020, mapper_.islands().front().high + 12));
    }
    // ds-lint: allow(no-alloc-markers) optional in-place construct of value state; no heap
    fast_scroll_.emplace(fs);
  } else {
    fast_scroll_.reset();
  }
  // Rebuilding the island table costs the firmware real work (divides
  // through the curve): ~220 cycles per entry.
  board_.mcu().charge_cycles(60 + 220 * islands);
}

void DistScrollDevice::apply_entry(std::size_t absolute_index) {
  if (absolute_index != cursor_.index()) {
    cursor_.move_to(absolute_index);
    DS_TRACE(tracer_, obs::EventKind::CursorMove, static_cast<std::uint32_t>(cursor_.index()),
             static_cast<std::uint32_t>(cursor_.depth()));
    redraw();
  }
}

// The per-sample firmware path: steady-state allocation-free (DS_HOT is
// lint-enforced; tests/alloc_guard_test.cpp pins it empirically).
// Cursor moves leave the region — redraw() builds display strings and
// may allocate, which is why it is outside the markers: the no-alloc
// claim is the *sampling* loop, holding distance steady.
DS_HOT_BEGIN
void DistScrollDevice::firmware_tick() {
  if (!powered_) return;
  auto& mcu = board_.mcu();
  const util::Seconds now = queue_->now();

  // --- ranger duty cycling (idle -> sample every Nth tick, lower draw) --
  bool sample_this_tick = true;
  if (config_.enable_sensor_duty_cycle) {
    sensor_idle_ = (now.value - last_activity_s_) >= config_.idle_after.value;
    board_.battery().set_draw(
        sensor_draw_, sensor_idle_ ? kRangerDrawMa / config_.idle_divider : kRangerDrawMa);
    if (sensor_idle_ && ++ticks_since_sample_ < config_.idle_divider) {
      sample_this_tick = false;
    }
  }

  // --- posture context gate (Section 4.3) --------------------------------
  bool gate_open = true;
  if (context_gate_) {
    DS_STAGE(Sensor);
    const auto accel_counts = board_.adc().sample(accel_x_channel_, now);
    const auto pitch = accel_.tilt_from_volts(board_.adc().to_volts(accel_counts));
    gate_open = context_gate_->on_sample(now, pitch);
    mcu.charge_cycles(kAdcCycles + 30);
  }

  if (sample_this_tick) {
    ticks_since_sample_ = 0;
    {
      DS_STAGE(AdcSample);
      // Sample the ranger through the ADC (the MCU busy-waits conversion),
      // or consume the replay override's recorded counts stream. Cycle
      // cost is identical either way so replays keep the MCU budget.
      if (counts_override_) {
        if (const auto forced = counts_override_()) last_counts_ = *forced;
      } else {
        last_counts_ = board_.adc().sample(ranger_channel_, now);
      }
      mcu.charge_cycles(kAdcCycles);
    }
    DS_TRACE(tracer_, obs::EventKind::AdcRead, static_cast<std::uint32_t>(ranger_channel_),
             last_counts_.value);

    // --- dual-sensor fold resolution (the board's second GP2D120) --------
    bool sample_valid = true;
    bool fold_zone = false;
    util::AdcCounts effective_counts = last_counts_;
    if (dual_resolver_) {
      DS_STAGE(Sensor);
      const auto secondary = board_.adc().sample(secondary_channel_, now);
      mcu.charge_cycles(kAdcCycles + 180);  // two inversions + compare
      const auto resolution = dual_resolver_->resolve(last_counts_, secondary);
      if (!resolution) {
        sample_valid = false;  // unexplained pair: glitch, skip sample
      } else if (resolution->folded) {
        fold_zone = true;  // unambiguous "too close"
      } else {
        effective_counts = config_.curve.counts_at(resolution->distance);
      }
    }

    // --- expert turbo zone ------------------------------------------------
    if (fast_scroll_ && gate_open && sample_valid) {
      const int steps = dual_resolver_ ? fast_scroll_->on_zone(now, fold_zone)
                                       : fast_scroll_->on_sample(now, last_counts_);
      if (steps > 0) {
        mcu.charge_cycles(20);
        mark_activity(now);
        if (chunker_) {
          for (int i = 0; i < steps; ++i) advance_chunk();
        } else {
          const int dir = (config_.scroll.direction == ScrollDirection::TowardUserScrollsDown)
                              ? steps
                              : -steps;
          cursor_.move_by(dir);
          DS_TRACE(tracer_, obs::EventKind::CursorMove,
                   static_cast<std::uint32_t>(cursor_.index()),
                   static_cast<std::uint32_t>(cursor_.depth()));
          redraw();
        }
      }
    }

    // --- distance -> island -> entry ---------------------------------------
    if (sample_valid && !fold_zone) {
      DS_STAGE(Controller);
      const ScrollController::Update update = controller_.on_sample(effective_counts);
      mcu.charge_cycles(update.cycles);
      if (update.changed) mark_activity(now);
      if (update.menu_index && gate_open) {
        std::size_t absolute = *update.menu_index;
        if (chunker_) {
          absolute = chunker_->to_absolute(*update.menu_index);
        } else if (zoom_) {
          // SpeedZoom consumes island indices directly (before direction
          // mapping the controller applied); undo the mapping.
          std::size_t island = *update.menu_index;
          if (config_.scroll.direction == ScrollDirection::TowardUserScrollsDown) {
            island = mapper_.entries() - 1 - island;
          }
          absolute = zoom_->on_update(now, island);
          if (config_.scroll.direction == ScrollDirection::TowardUserScrollsDown) {
            absolute = cursor_.level_size() - 1 - absolute;
          }
          mcu.charge_cycles(40);
        }
        apply_entry(absolute);
      }
    }
  }

  // Battery bookkeeping per tick; a depleted battery drops the
  // regulator and the device browns out.
  board_.battery().consume(config_.firmware_tick);
  if (board_.battery().depleted()) {
    browned_out_ = true;
    power_off();
    return;
  }

  if (++ticks_since_telemetry_ >= config_.telemetry_divider) {
    ticks_since_telemetry_ = 0;
    send_state_frame();
  }
}
DS_HOT_END

bool DistScrollDevice::load_calibration_from_eeprom() {
  const auto calibration = CalibrationStore::load(eeprom_);
  if (!calibration) {
    calibrated_from_eeprom_ = false;
    return false;
  }
  config_.curve = calibration->curve;
  config_.islands.near = calibration->usable_near;
  // Keep the configured far bound if the stored one extends beyond it:
  // comfort (arm length) caps the range before the sensor does.
  if (calibration->usable_far < config_.islands.far) {
    config_.islands.far = calibration->usable_far;
  }
  calibrated_from_eeprom_ = true;
  rebuild_mapping();
  return true;
}

void DistScrollDevice::save_calibration_to_eeprom(const CalibrationResult& calibration) {
  // The firmware stalls for the EEPROM's self-timed writes.
  const util::Seconds wait = CalibrationStore::save(eeprom_, calibration);
  board_.mcu().charge_cycles(static_cast<std::uint64_t>(wait.value * 10e6));
}

void DistScrollDevice::mark_activity(util::Seconds now) {
  last_activity_s_ = now.value;
  sensor_idle_ = false;
}

bool DistScrollDevice::scrolling_enabled() const {
  return context_gate_ ? context_gate_->scrolling_enabled() : true;
}

void DistScrollDevice::button_tick() {
  if (!powered_) return;
  for (std::size_t i = 0; i < debouncers_.size(); ++i) {
    debouncers_[i].tick(board_.gpio().read(i));
  }
  board_.mcu().charge_cycles(kButtonScanCycles);
}

void DistScrollDevice::handle_select() {
  mark_activity(queue_->now());
  const menu::MenuNode& target = cursor_.highlighted();
  SelectionEvent event{queue_->now().value, target.label(), target.is_leaf(), cursor_.depth()};
  if (cursor_.enter()) {
    event.depth = cursor_.depth();
    DS_TRACE(tracer_, obs::EventKind::CursorMove, static_cast<std::uint32_t>(cursor_.index()),
             static_cast<std::uint32_t>(cursor_.depth()));
    rebuild_mapping();
    redraw();
  } else {
    // Leaf activation: the application-level "select" action.
    if (leaf_callback_) leaf_callback_(event);
  }
  selections_.push_back(std::move(event));
}

void DistScrollDevice::handle_back() {
  mark_activity(queue_->now());
  if (cursor_.back()) {
    DS_TRACE(tracer_, obs::EventKind::CursorMove, static_cast<std::uint32_t>(cursor_.index()),
             static_cast<std::uint32_t>(cursor_.depth()));
    rebuild_mapping();
    redraw();
  }
}

void DistScrollDevice::handle_aux() {
  mark_activity(queue_->now());
  advance_chunk();
}

void DistScrollDevice::advance_chunk() {
  if (!chunker_) return;
  if (!chunker_->next_chunk()) chunker_->jump_to_chunk(0);  // wrap around
  const std::size_t islands = chunker_->entries_in_chunk();
  if (islands != mapper_.entries()) {
    // The last chunk can be short: the island table must match it.
    mapper_.rebuild(config_.curve, islands, config_.islands);
    controller_.reinitialize(config_.scroll);
    controller_.set_tracer(tracer_);
    board_.mcu().charge_cycles(60 + 220 * islands);
  } else {
    controller_.reset();
  }
  cursor_.move_to(chunker_->to_absolute(0));
  DS_TRACE(tracer_, obs::EventKind::CursorMove, static_cast<std::uint32_t>(cursor_.index()),
           static_cast<std::uint32_t>(cursor_.depth()));
  redraw();
}

void DistScrollDevice::redraw() {
  DS_STAGE(Flush);
  ++redraws_;
  board_.mcu().charge_cycles(kRedrawCycles);
  DS_TRACE(tracer_, obs::EventKind::DisplayFlush, static_cast<std::uint32_t>(cursor_.index()),
           static_cast<std::uint32_t>(std::max<std::size_t>(1, cursor_.level_size())));

  // --- top display: 5-line menu window around the cursor -----------------
  const menu::MenuNode& level = cursor_.current_level();
  const std::size_t size = level.child_count();
  std::size_t window_start = 0;
  if (size > display::kTextLines) {
    const std::size_t cursor_index = cursor_.index();
    const std::size_t half = display::kTextLines / 2;
    window_start = (cursor_index > half) ? cursor_index - half : 0;
    window_start = std::min(window_start, size - display::kTextLines);
  }
  std::array<std::string, display::kTextLines> lines{};
  int highlight = -1;
  for (int row = 0; row < display::kTextLines; ++row) {
    const std::size_t entry = window_start + static_cast<std::size_t>(row);
    if (entry >= size) break;
    lines[static_cast<std::size_t>(row)] = level.child(entry).label();
    if (entry == cursor_.index()) highlight = row;
  }
  top_driver_.show(lines, highlight);

  // --- bottom display: the paper's debug/state information ----------------
  char buf[24];
  std::array<std::string, display::kTextLines> debug{};
  std::snprintf(buf, sizeof(buf), "cnt %4u", last_counts_.value);
  debug[0] = buf;
  std::snprintf(buf, sizeof(buf), "lvl %zu  idx %zu/%zu", cursor_.depth(), cursor_.index() + 1,
                size);
  debug[1] = buf;
  if (chunker_) {
    std::snprintf(buf, sizeof(buf), "chunk %zu/%zu", chunker_->chunk() + 1,
                  chunker_->chunk_count());
    debug[2] = buf;
  } else if (zoom_) {
    std::snprintf(buf, sizeof(buf), "zoom %s",
                  zoom_->mode() == SpeedZoom::Mode::Coarse ? "coarse" : "fine");
    debug[2] = buf;
  }
  std::snprintf(buf, sizeof(buf), "bat %3.0f%%", board_.battery().remaining_fraction() * 100.0);
  debug[3] = buf;
  debug[4] = fast_scroll_ && fast_scroll_->active() ? "TURBO" : "";
  bottom_driver_.show(debug, -1);
}

DS_HOT_BEGIN
void DistScrollDevice::send_state_frame() {
  wireless::StateReport report;
  report.adc_counts = last_counts_.value;
  report.menu_depth = static_cast<std::uint8_t>(cursor_.depth());
  report.cursor_index = static_cast<std::uint8_t>(std::min<std::size_t>(255, cursor_.index()));
  report.level_size = static_cast<std::uint8_t>(std::min<std::size_t>(255, cursor_.level_size()));
  for (std::size_t i = 0; i < debouncers_.size(); ++i) {
    if (debouncers_[i].pressed()) report.buttons |= static_cast<std::uint8_t>(1u << i);
  }
  // Stack-buffer encode (bytes identical to wireless::encode): the
  // state frame fires every telemetry_divider ticks, squarely inside
  // the sample loop's no-allocation contract.
  std::array<std::uint8_t, wireless::StateReport::kPackedSize> payload{};
  report.pack_into(payload);
  std::array<std::uint8_t, wireless::kMaxEncodedFrame> wire{};
  const std::size_t wire_len =
      wireless::encode_into(wireless::FrameType::State, telemetry_seq_++, payload, wire);
  for (std::size_t i = 0; i < wire_len; ++i) {
    board_.uart().transmit(wire[i]);
  }
  board_.mcu().charge_cycles(120);
}
DS_HOT_END

}  // namespace distscroll::core
