#include "core/device_calibration.h"

#include <cassert>

namespace distscroll::core {

DeviceCalibrationReport calibrate_device(DistScrollDevice& device, sim::EventQueue& queue,
                                         std::span<const double> jig_distances_cm,
                                         DeviceCalibrationConfig config) {
  assert(jig_distances_cm.size() >= 3);
  DeviceCalibrationReport report;
  const double t0 = queue.now().value;

  // The jig: a fixture holding the device at exact distances.
  double jig_position = jig_distances_cm.front();
  device.set_distance_provider(
      [&jig_position](util::Seconds) { return util::Centimeters{jig_position}; });
  if (!device.powered()) device.power_on();

  std::vector<CalibrationSample> samples;
  samples.reserve(jig_distances_cm.size());
  for (const double d : jig_distances_cm) {
    jig_position = d;
    // Let the sensor's sample-and-hold flush the previous position.
    queue.run_until(util::Seconds{queue.now().value + 0.1});
    double sum = 0.0;
    for (int i = 0; i < config.samples_per_point; ++i) {
      queue.run_until(util::Seconds{queue.now().value + config.dwell_per_sample.value});
      sum += device.last_counts().value;
    }
    samples.push_back(
        {util::Centimeters{d},
         util::AdcCounts{static_cast<std::uint16_t>(sum / config.samples_per_point + 0.5)}});
  }

  report.result = calibrate(samples);
  report.accepted = report.result.r_squared >= config.min_r_squared;
  if (report.accepted) {
    device.save_calibration_to_eeprom(report.result);
    report.persisted = device.load_calibration_from_eeprom();
  }
  report.duration_s = queue.now().value - t0;
  return report;
}

}  // namespace distscroll::core
