// Dual-ranger disambiguation.
//
// The prototype board carries TWO distance sensors, "only one is used in
// our experiments so far" (paper Section 4). This module puts the second
// one to work: mounted recessed by `offset_cm` inside the case, it sees
// the same target `offset_cm` farther away. Because the GP2D120 response
// folds back below its ~3.2 cm peak, a single reading is ambiguous
// (paper: "it cannot be detected if the device is moved away (> 4cm) or
// towards the user (< 4 cm)") — but the recessed sensor sits on the
// monotone branch even when the primary has folded back, so comparing
// the two readings resolves the fold.
//
// Resolution algorithm: form both candidate distances from the primary
// reading (monotone-branch inverse and fold-back-branch inverse),
// predict the secondary's reading for each candidate, pick the candidate
// with the smaller prediction error.
#pragma once

#include <optional>

#include "core/sensor_curve.h"
#include "util/units.h"

namespace distscroll::core {

class DualRangeResolver {
 public:
  struct Config {
    /// How much deeper the secondary sensor sits in the case.
    double offset_cm = 3.0;
    /// The sensors' shared response peak (fold point).
    double peak_cm = 3.2;
    /// Output at touching distance (rising-branch anchor), in volts.
    double dead_zone_volts = 0.45;
    /// Reject resolutions whose best prediction error exceeds this many
    /// ADC counts (e.g. a specular glitch on one sensor).
    double max_residual_counts = 40.0;
  };

  DualRangeResolver(SensorCurve primary, SensorCurve secondary, Config config)
      : primary_(primary), secondary_(secondary), config_(config) {}

  struct Resolution {
    util::Centimeters distance{0.0};
    bool folded = false;      // true: the primary was below its peak
    double residual_counts = 0.0;
  };

  /// Resolve the true distance from simultaneous readings. nullopt when
  /// neither candidate explains the secondary reading (sensor glitch).
  [[nodiscard]] std::optional<Resolution> resolve(util::AdcCounts primary,
                                                  util::AdcCounts secondary) const;

  /// The fold-back branch inverse of the primary: distance below the
  /// peak that produces `v` (linear rising branch, see Gp2d120Model).
  [[nodiscard]] std::optional<util::Centimeters> fold_branch_distance(util::Volts v) const;

 private:
  SensorCurve primary_;
  SensorCurve secondary_;
  Config config_;
};

}  // namespace distscroll::core
