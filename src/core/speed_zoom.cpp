#include "core/speed_zoom.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace distscroll::core {

SpeedZoom::SpeedZoom(std::size_t total_entries, std::size_t islands, Config config)
    : config_(config),
      total_(std::max<std::size_t>(1, total_entries)),
      islands_(std::max<std::size_t>(2, islands)) {
  bucket_size_ = (total_ + islands_ - 1) / islands_;
  mode_ = (total_ > islands_) ? Mode::Coarse : Mode::Fine;
}

std::size_t SpeedZoom::coarse_entry(std::size_t island_index) const {
  // Each island addresses the middle of a bucket.
  const std::size_t bucket = std::min(island_index, islands_ - 1);
  const std::size_t start = bucket * bucket_size_;
  const std::size_t end = std::min(start + bucket_size_, total_);
  if (start >= total_) return total_ - 1;
  return start + (end - start) / 2;
}

std::size_t SpeedZoom::fine_entry(std::size_t island_index) const {
  // Islands address entries inside the anchored bucket; islands beyond
  // the bucket clamp to its edges (the user can zoom out again by
  // moving fast).
  const std::size_t start = anchor_bucket_ * bucket_size_;
  const std::size_t end = std::min(start + bucket_size_, total_);
  if (start >= total_) return total_ - 1;
  // Spread the islands across the bucket.
  const std::size_t span = end - start;
  const std::size_t offset =
      span <= 1 ? 0 : island_index * (span - 1) / (islands_ - 1);
  return start + std::min(offset, span - 1);
}

std::size_t SpeedZoom::on_update(util::Seconds now, std::size_t island_index) {
  island_index = std::min(island_index, islands_ - 1);
  const double dt = std::max(1e-4, now.value - last_update_time_.value);
  last_update_time_ = now;

  if (last_island_ && *last_island_ != island_index) {
    const double hops = std::abs(static_cast<double>(island_index) -
                                 static_cast<double>(*last_island_));
    const double inst_velocity = hops / dt;
    velocity_ += config_.velocity_alpha * (inst_velocity - velocity_);
    last_change_time_ = now;
  } else {
    // Decay the estimate during dwell.
    velocity_ *= std::exp(-dt / std::max(1e-3, config_.zoom_in_dwell.value));
  }
  last_island_ = island_index;

  if (total_ <= islands_) {
    // Menu fits the islands: always fine, identity-ish mapping.
    mode_ = Mode::Fine;
    anchor_bucket_ = 0;
    current_entry_ = std::min(island_index, total_ - 1);
    return current_entry_;
  }

  switch (mode_) {
    case Mode::Coarse:
      current_entry_ = coarse_entry(island_index);
      if (velocity_ < config_.zoom_out_velocity &&
          (now.value - last_change_time_.value) >= config_.zoom_in_dwell.value) {
        // Dwelled long enough: zoom into the bucket under the cursor.
        anchor_bucket_ = std::min(island_index, islands_ - 1);
        mode_ = Mode::Fine;
      }
      break;
    case Mode::Fine:
      current_entry_ = fine_entry(island_index);
      if (velocity_ >= config_.zoom_out_velocity) {
        mode_ = Mode::Coarse;
      }
      break;
  }
  return current_entry_;
}

void SpeedZoom::reset() {
  mode_ = (total_ > islands_) ? Mode::Coarse : Mode::Fine;
  velocity_ = 0.0;
  last_island_.reset();
  last_change_time_ = util::Seconds{0.0};
  last_update_time_ = util::Seconds{0.0};
  anchor_bucket_ = 0;
  current_entry_ = 0;
}

}  // namespace distscroll::core
