// Speed-dependent automatic zooming for long menus.
//
// The paper's suggested remedy for long menus cites Igarashi & Hinckley's
// speed-dependent automatic zooming [6]: when the user moves fast the
// view zooms out (coarse granularity — each island addresses a bucket of
// entries); when the user dwells, the view zooms back in (islands address
// individual entries inside the landed bucket).
//
// Fed with island-selection updates from the ScrollController; emits the
// absolute entry index under the current zoom.
#pragma once

#include <cstddef>
#include <optional>

#include "util/units.h"

namespace distscroll::core {

class SpeedZoom {
 public:
  struct Config {
    /// Island hops per second above which the view zooms out.
    double zoom_out_velocity = 6.0;
    /// Dwell (no island change) after which the view zooms back in.
    util::Seconds zoom_in_dwell{0.6};
    /// Velocity estimator smoothing (exponential, per update).
    double velocity_alpha = 0.4;
  };

  enum class Mode : std::uint8_t { Fine, Coarse };

  SpeedZoom(std::size_t total_entries, std::size_t islands) : SpeedZoom(total_entries, islands, Config{}) {}
  SpeedZoom(std::size_t total_entries, std::size_t islands, Config config);

  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] std::size_t total_entries() const { return total_; }
  [[nodiscard]] std::size_t islands() const { return islands_; }
  [[nodiscard]] std::size_t bucket_size() const { return bucket_size_; }
  [[nodiscard]] double velocity() const { return velocity_; }

  /// Process an island-selection update; returns the absolute entry the
  /// cursor should sit on.
  std::size_t on_update(util::Seconds now, std::size_t island_index);

  void reset();

 private:
  [[nodiscard]] std::size_t coarse_entry(std::size_t island_index) const;
  [[nodiscard]] std::size_t fine_entry(std::size_t island_index) const;

  Config config_;
  std::size_t total_;
  std::size_t islands_;
  std::size_t bucket_size_;
  Mode mode_ = Mode::Coarse;
  double velocity_ = 0.0;
  std::optional<std::size_t> last_island_;
  util::Seconds last_change_time_{0.0};
  util::Seconds last_update_time_{0.0};
  std::size_t anchor_bucket_ = 0;  // bucket the fine view is zoomed into
  std::size_t current_entry_ = 0;
};

}  // namespace distscroll::core
