#include "core/island_mapper.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace distscroll::core {

IslandMapper::IslandMapper(const SensorCurve& curve, std::size_t entries, Config config) {
  rebuild(curve, entries, config);
}

void IslandMapper::rebuild(const SensorCurve& curve, std::size_t entries, Config config) {
  config_ = config;
  assert(entries >= 1);
  assert(config.near < config.far);
  assert(config.coverage > 0.0 && config.coverage <= 1.0);

  const double span = config.far.value - config.near.value;
  const double slot = span / static_cast<double>(entries);

  // Entry centres at equally spaced distances: the perceptual uniformity
  // the paper engineers for. centre_counts_ is scratch kept as a member
  // so rebuild() allocates nothing once capacity covers the largest
  // level.
  // ds-lint: allow(no-alloc-markers) member scratch; capacity ratchets to the largest level once
  centre_counts_.resize(entries);
  std::vector<double>& centre_counts = centre_counts_;
  // ds-lint: allow(no-alloc-markers) same recycled-capacity pattern as centre_counts_
  centres_.resize(entries);
  for (std::size_t i = 0; i < entries; ++i) {
    const util::Centimeters d{config.near.value + (static_cast<double>(i) + 0.5) * slot};
    centres_[i] = d;
    centre_counts[i] = curve.counts_at(d).value;
  }

  spectrum_high_ = curve.counts_at(config_.near).value;
  spectrum_low_ = curve.counts_at(config_.far).value;

  // ds-lint: allow(no-alloc-markers) recycled capacity: warm rebuilds shrink or reuse, never grow past the first largest level
  islands_.resize(entries);
  // `bound`: the next island's high end must stay strictly below it so
  // the table remains disjoint after integer rounding (binary-search
  // invariant). When the ADC runs out of resolution an island collapses
  // to an empty interval (low > high) — that entry is genuinely
  // unreachable by distance alone, which the long-menu experiments
  // surface.
  int bound = 1024;
  for (std::size_t i = 0; i < entries; ++i) {
    // Counts decrease with distance, so the *upper* count bound faces the
    // nearer neighbour (i-1) and the lower bound the farther one (i+1).
    const double up_gap = (i == 0) ? spectrum_high_ - centre_counts[0]
                                   : (centre_counts[i - 1] - centre_counts[i]) / 2.0;
    const double down_gap = (i + 1 == entries)
                                ? centre_counts[i] - spectrum_low_
                                : (centre_counts[i] - centre_counts[i + 1]) / 2.0;
    double high_d = centre_counts[i] + std::max(0.0, up_gap) * config_.coverage;
    double low_d = centre_counts[i] - std::max(0.0, down_gap) * config_.coverage;
    high_d = std::clamp(high_d, 0.0, 1023.0);
    low_d = std::clamp(low_d, 0.0, std::max(0.0, high_d));

    int high = std::min(static_cast<int>(std::lround(high_d)), bound - 1);
    int low = static_cast<int>(std::lround(low_d));
    if (high < 0) high = 0;
    if (low > high) {
      // Squeezed out by quantisation: empty interval positioned at
      // `high` so the table stays ordered.
      low = high + 1;
      bound = high + 1;
    } else {
      bound = low;
    }
    const int centre = std::clamp(static_cast<int>(std::lround(centre_counts[i])),
                                  std::min(low, high), high);
    islands_[i] = Island{static_cast<std::uint16_t>(low), static_cast<std::uint16_t>(high),
                         static_cast<std::uint16_t>(std::max(0, centre))};
  }

  // Burn the counts→entry LUT. Islands are disjoint by construction, so
  // painting each interval over a gap-filled table is exact; empty
  // islands (low > high) paint nothing.
  lut_.fill(kLutGap);
  for (std::size_t i = 0; i < entries; ++i) {
    const Island& island = islands_[i];
    if (island.low > island.high) continue;
    const std::size_t hi = std::min<std::size_t>(island.high, kLutSize - 1);
    for (std::size_t c = island.low; c <= hi; ++c) {
      lut_[c] = static_cast<std::uint16_t>(i);
    }
  }
}

std::optional<std::size_t> IslandMapper::lookup(util::AdcCounts counts) const {
  // Islands are ordered by descending counts (entry 0 nearest/highest).
  // Binary search for the first island whose low bound is <= counts.
  const std::uint16_t x = counts.value;
  std::size_t lo = 0, hi = islands_.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (islands_[mid].high < x) {
      // x is above this island -> nearer entries (smaller index).
      hi = mid;
    } else if (islands_[mid].low > x) {
      lo = mid + 1;
    } else {
      return mid;
    }
  }
  return std::nullopt;
}

IslandMapper::Probe IslandMapper::probe(util::AdcCounts counts,
                                        std::optional<std::size_t> current) const {
  if (current && *current < islands_.size() && config_.hysteresis_counts > 0) {
    const Island& island = islands_[*current];
    const int x = counts.value;
    const int lo = static_cast<int>(island.low) - config_.hysteresis_counts;
    const int hi = static_cast<int>(island.high) + config_.hysteresis_counts;
    if (x >= lo && x <= hi) return {current, false, false};
  }
  auto hit = lookup_lut(counts);
  if (hit) return {hit, false, true};
  // Selection-free gap: "No selection or change happens if the device is
  // held in a distance between two of those islands."
  return {current, true, true};
}

std::optional<std::size_t> IslandMapper::select(util::AdcCounts counts,
                                                std::optional<std::size_t> current) const {
  return probe(counts, current).selection;
}

double IslandMapper::coverage_fraction() const {
  double covered = 0.0;
  for (const auto& island : islands_) {
    if (island.high >= island.low) {
      covered += static_cast<double>(island.high - island.low) + 1.0;
    }
  }
  const double spectrum = spectrum_high_ - spectrum_low_ + 1.0;
  if (spectrum <= 0.0) return 0.0;
  return std::min(1.0, covered / spectrum);
}

util::Centimeters IslandMapper::centre_distance(std::size_t entry) const {
  assert(entry < centres_.size());
  return centres_[entry];
}

std::uint64_t IslandMapper::lookup_cost_cycles() const {
  // Flash LUT fetch: load the 16-bit counts into TBLPTR (~6 cycles of
  // pointer math on the 8-bit core), one TBLRD* (2 cycles), plus the
  // gap-sentinel compare and branch — constant regardless of how many
  // entries the menu level has.
  return 10;
}

std::uint64_t IslandMapper::search_cost_cycles() const {
  // The pre-LUT binary search: ~14 cycles per probe (compare, branch,
  // index math on an 8-bit core handling 16-bit values) plus fixed
  // overhead.
  const auto probes = static_cast<std::uint64_t>(
      std::ceil(std::log2(static_cast<double>(std::max<std::size_t>(2, islands_.size())))));
  return 12 + probes * 14;
}

}  // namespace distscroll::core
