// Chunked access to long menus (the paper's open issue Q4: "How to
// scroll long menus? ... especially if large menus could only be
// accessed in chunks of e.g. 10 entries").
//
// The distance range maps onto a window ("chunk") of the level; a
// dedicated button pages between chunks. Pure index arithmetic — the
// device layer owns buttons and mapping.
#pragma once

#include <algorithm>
#include <cstddef>

namespace distscroll::core {

class ChunkedScroll {
 public:
  ChunkedScroll(std::size_t total_entries, std::size_t chunk_size)
      : total_(std::max<std::size_t>(1, total_entries)),
        chunk_size_(std::max<std::size_t>(1, chunk_size)) {}

  [[nodiscard]] std::size_t total_entries() const { return total_; }
  [[nodiscard]] std::size_t chunk_size() const { return chunk_size_; }
  [[nodiscard]] std::size_t chunk_count() const { return (total_ + chunk_size_ - 1) / chunk_size_; }
  [[nodiscard]] std::size_t chunk() const { return chunk_; }

  /// Entries in the current chunk (the last chunk may be short).
  [[nodiscard]] std::size_t entries_in_chunk() const {
    const std::size_t start = chunk_ * chunk_size_;
    return std::min(chunk_size_, total_ - start);
  }

  /// Translate a within-chunk index (what the islands select) to the
  /// absolute entry index.
  [[nodiscard]] std::size_t to_absolute(std::size_t within_chunk) const {
    const std::size_t start = chunk_ * chunk_size_;
    return std::min(start + within_chunk, total_ - 1);
  }

  /// Which chunk contains an absolute index, and where inside it.
  [[nodiscard]] std::size_t chunk_of(std::size_t absolute) const {
    return std::min(absolute, total_ - 1) / chunk_size_;
  }

  bool next_chunk() {
    if (chunk_ + 1 >= chunk_count()) return false;
    ++chunk_;
    return true;
  }

  bool prev_chunk() {
    if (chunk_ == 0) return false;
    --chunk_;
    return true;
  }

  void jump_to_chunk(std::size_t chunk) { chunk_ = std::min(chunk, chunk_count() - 1); }

 private:
  std::size_t total_;
  std::size_t chunk_size_;
  std::size_t chunk_ = 0;
};

}  // namespace distscroll::core
