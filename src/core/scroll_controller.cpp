#include "core/scroll_controller.h"

#include <algorithm>

namespace distscroll::core {

std::size_t ScrollController::to_menu_index(std::size_t island_index) const {
  // Island 0 is the NEAREST entry. "Toward user scrolls down" therefore
  // means the nearest island is the bottom of the menu.
  if (config_.direction == ScrollDirection::TowardUserScrollsDown) {
    return mapper_->entries() - 1 - island_index;
  }
  return island_index;
}

std::uint16_t ScrollController::apply_smoothing(std::uint16_t raw, std::uint64_t& cycles) {
  switch (config_.smoothing) {
    case Smoothing::Raw:
      cycles += 2;  // just a register move
      return raw;
    case Smoothing::Median3: {
      median_window_.push_overwrite(raw);
      std::uint16_t a = raw, b = raw, c = raw;
      if (median_window_.size() >= 1) a = median_window_.at_from_oldest(0);
      if (median_window_.size() >= 2) b = median_window_.at_from_oldest(1);
      if (median_window_.size() >= 3) c = median_window_.at_from_oldest(2);
      // Median of three: ~9 compares/moves on the PIC.
      cycles += 18;
      const std::uint16_t lo = std::min({a, b, c});
      const std::uint16_t hi = std::max({a, b, c});
      return static_cast<std::uint16_t>(a + b + c - lo - hi);
    }
    case Smoothing::Ema: {
      // Fixed-point EMA with alpha = 1/4: state is counts << 2.
      if (ema_state_ < 0) ema_state_ = static_cast<std::int32_t>(raw) << 2;
      ema_state_ += ((static_cast<std::int32_t>(raw) << 2) - ema_state_) >> 2;
      cycles += 10;  // shift-add on 16/32-bit emulated arithmetic
      return static_cast<std::uint16_t>(ema_state_ >> 2);
    }
  }
  return raw;
}

ScrollController::Update ScrollController::on_sample(util::AdcCounts raw) {
  Update update;
  ++samples_;
  const std::uint16_t filtered = apply_smoothing(raw.value, update.cycles);

  const auto before = island_selection_;
  const bool was_in_gap = in_gap_;
  // One table probe serves both the selection and the gap statistic (a
  // second stateless lookup() per sample used to pay for the latter).
  const auto result = mapper_->probe(util::AdcCounts{filtered}, island_selection_);
  update.cycles += result.table_probed ? mapper_->lookup_cost_cycles()
                                       : IslandMapper::hysteresis_hold_cycles();
  if (result.in_gap) ++gap_samples_;
  if (result.selection) island_selection_ = result.selection;
  if (island_selection_ != before) {
    ++changes_;
    update.changed = true;
  }
  in_gap_ = result.in_gap;
  // --- trace the transitions (observability only; no behaviour) ----------
  if (island_selection_ != before) {
    if (before) {
      DS_TRACE(tracer_, obs::EventKind::IslandLeave, static_cast<std::uint32_t>(*before),
               static_cast<std::uint32_t>(to_menu_index(*before)));
    }
    DS_TRACE(tracer_, obs::EventKind::IslandEnter,
             static_cast<std::uint32_t>(*island_selection_),
             static_cast<std::uint32_t>(to_menu_index(*island_selection_)));
  } else if (!in_gap_ && was_in_gap && island_selection_) {
    // Re-entered the same island after a dead-zone excursion.
    DS_TRACE(tracer_, obs::EventKind::IslandEnter,
             static_cast<std::uint32_t>(*island_selection_),
             static_cast<std::uint32_t>(to_menu_index(*island_selection_)));
  }
  if (in_gap_ && !was_in_gap && island_selection_) {
    DS_TRACE(tracer_, obs::EventKind::DeadZoneCross,
             static_cast<std::uint32_t>(*island_selection_), filtered);
  }
  update.menu_index = selection();
  return update;
}

std::optional<std::size_t> ScrollController::selection() const {
  if (!island_selection_) return std::nullopt;
  return to_menu_index(*island_selection_);
}

void ScrollController::reset() {
  island_selection_.reset();
  in_gap_ = false;
  median_window_.clear();
  ema_state_ = -1;
}

}  // namespace distscroll::core
