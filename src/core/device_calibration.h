// In-situ device calibration.
//
// The paper's curve (Fig. 4/5) was measured per prototype: "These
// properties ... were verified in different light conditions and with
// different clothing as surfaces in front of the sensor." This module
// packages that procedure as a firmware workflow: the device is placed
// on a reference jig, swept through known distances, samples are
// collected through the NORMAL sensing path (sensor -> ADC -> firmware),
// the idealised curve is fitted, validated, persisted to EEPROM and
// activated.
#pragma once

#include <span>

#include "core/calibration.h"
#include "core/distscroll_device.h"

namespace distscroll::core {

struct DeviceCalibrationReport {
  CalibrationResult result{};
  bool accepted = false;   // fit quality above threshold
  bool persisted = false;  // written to EEPROM and re-loaded
  double duration_s = 0.0; // simulated time the procedure took
};

struct DeviceCalibrationConfig {
  int samples_per_point = 6;
  /// Dwell per jig position: must exceed the sensor's 38 ms period so
  /// every sample is a fresh measurement.
  util::Seconds dwell_per_sample{60e-3};
  double min_r_squared = 0.98;  // acceptance threshold
};

/// Run the calibration procedure. Temporarily owns the device's
/// distance provider (the jig); the caller re-attaches the hand
/// afterwards. On acceptance the curve is saved to EEPROM and applied.
[[nodiscard]] DeviceCalibrationReport calibrate_device(
    DistScrollDevice& device, sim::EventQueue& queue, std::span<const double> jig_distances_cm,
    DeviceCalibrationConfig config = {});

}  // namespace distscroll::core
