// Turns the raw ADC sample stream into menu-cursor positions.
//
// Holds the firmware-side policy knobs the paper leaves open:
//  * direction mapping — "we are currently analyzing whether it is more
//    intuitive to move the DistScroll towards oneself to scroll down or
//    to scroll up" (Section 5.1 / open issue Q5);
//  * input smoothing — the paper reads the parameter "directly ...
//    without the need of heavy input processing"; raw lookup is the
//    paper's mode, median-3 and EMA are the ablation alternatives.
//
// All arithmetic is integer, and each processed sample reports its PIC
// cycle cost so the "no heavy processing" claim can be benchmarked.
#pragma once

#include <cstdint>
#include <optional>

#include "core/island_mapper.h"
#include "obs/tracer.h"
#include "util/ring_buffer.h"
#include "util/units.h"

namespace distscroll::core {

enum class ScrollDirection : std::uint8_t {
  /// Moving the device toward the body scrolls DOWN the menu (nearest
  /// island = last entry).
  TowardUserScrollsDown,
  /// Moving toward the body scrolls UP (nearest island = first entry).
  TowardUserScrollsUp,
};

enum class Smoothing : std::uint8_t {
  Raw,      // the paper's direct mapping
  Median3,  // kills single-sample glitches (specular boundaries)
  Ema,      // exponential moving average, alpha = 1/4
};

class ScrollController {
 public:
  struct Config {
    ScrollDirection direction = ScrollDirection::TowardUserScrollsDown;
    Smoothing smoothing = Smoothing::Raw;
  };

  ScrollController(const IslandMapper& mapper, Config config,
                   obs::Tracer* tracer = nullptr)
      : mapper_(&mapper), config_(config), tracer_(tracer) {}

  /// Structured tracing of island enter/leave and dead-zone crossings.
  /// Null detaches; tracing must never change behaviour (pinned by the
  /// tracing on/off property test).
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] const IslandMapper& mapper() const { return *mapper_; }

  struct Update {
    std::optional<std::size_t> menu_index;  // current selection after this sample
    bool changed = false;                   // selection moved this sample
    std::uint64_t cycles = 0;               // firmware cost of this sample
  };

  /// Process one ADC sample.
  Update on_sample(util::AdcCounts raw);

  /// Current selection as a menu index (nullopt before first island hit).
  [[nodiscard]] std::optional<std::size_t> selection() const;

  void reset();

  /// Restore the freshly-constructed state — selection, smoothing state
  /// AND stream statistics — for a new session or config. Equivalent to
  /// replacing the controller object, minus the heap churn; the mapper
  /// binding and tracer are kept.
  void reinitialize(Config config) {
    config_ = config;
    reset();
    samples_ = 0;
    changes_ = 0;
    gap_samples_ = 0;
  }

  // Stream statistics for the study harness.
  [[nodiscard]] std::uint64_t samples() const { return samples_; }
  [[nodiscard]] std::uint64_t selection_changes() const { return changes_; }
  /// Samples whose (filtered) counts fell in a selection-free gap. With
  /// hysteresis enabled, samples the hysteresis band held inside the
  /// current island do not count as gaps (no table probe runs for them).
  [[nodiscard]] std::uint64_t gap_samples() const { return gap_samples_; }

 private:
  [[nodiscard]] std::size_t to_menu_index(std::size_t island_index) const;
  std::uint16_t apply_smoothing(std::uint16_t raw, std::uint64_t& cycles);

  const IslandMapper* mapper_;
  Config config_;
  obs::Tracer* tracer_ = nullptr;
  bool in_gap_ = false;  // last sample fell in a selection-free gap
  std::optional<std::size_t> island_selection_;
  util::RingBuffer<std::uint16_t, 3> median_window_;
  std::int32_t ema_state_ = -1;  // scaled by 4 to keep fractional bits
  std::uint64_t samples_ = 0;
  std::uint64_t changes_ = 0;
  std::uint64_t gap_samples_ = 0;
};

}  // namespace distscroll::core
