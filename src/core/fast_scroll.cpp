#include "core/fast_scroll.h"

namespace distscroll::core {

int FastScrollMode::on_sample(util::Seconds now, util::AdcCounts counts) {
  return on_zone(now, counts.value > config_.threshold_counts);
}

int FastScrollMode::on_zone(util::Seconds now, bool in_zone) {
  if (!in_zone) {
    active_ = false;
    return 0;
  }
  if (!active_) {
    // Entering the turbo zone: step immediately, then at repeat pace.
    active_ = true;
    last_step_ = now;
    return 1;
  }
  int steps = 0;
  while (now.value - last_step_.value >= config_.repeat_period.value) {
    last_step_ = last_step_ + config_.repeat_period;
    ++steps;
  }
  return steps;
}

}  // namespace distscroll::core
