// The complete DistScroll prototype: Smart-Its board, GP2D120 ranger,
// ADXL311, two BT96040 displays, three push buttons, contrast pot,
// battery, wireless telemetry — and the firmware loop that turns
// distance into menu navigation (paper Sections 4 and 5.1).
//
// Usage model (matches Figure 1): the simulated user holds the device,
// its distance to the body is whatever the human model's hand provides
// via set_distance_provider(); scrolling follows the distance, entries
// are selected "by clicking a specified button, here the top right
// button which is most conveniently operated with the thumb".
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/button_layout.h"
#include "core/calibration_store.h"
#include "core/chunked_scroll.h"
#include "core/context_gate.h"
#include "core/dual_sensor.h"
#include "core/fast_scroll.h"
#include "core/island_mapper.h"
#include "core/scroll_controller.h"
#include "core/sensor_curve.h"
#include "core/speed_zoom.h"
#include "display/bt96040.h"
#include "display/display_driver.h"
#include "hw/smart_its.h"
#include "input/button.h"
#include "input/debouncer.h"
#include "input/potentiometer.h"
#include "menu/menu.h"
#include "obs/tracer.h"
#include "sensors/adxl311.h"
#include "sensors/gp2d120.h"
#include "util/function_ref.h"
#include "wireless/packet.h"

namespace distscroll::core {

enum class LongMenuStrategy : std::uint8_t {
  Plain,      // islands = level size, however many that is
  Chunked,    // islands = chunk size; aux button pages chunks
  SpeedZoom,  // fixed island count + speed-dependent zooming
};

class DistScrollDevice {
 public:
  struct Config {
    hw::SmartIts::Config board{};
    sensors::Gp2d120Model::Config sensor{};
    sensors::Adxl311Model::Config accel{};
    SensorCurve curve{};  // the firmware's calibrated curve
    IslandMapper::Config islands{};
    ScrollController::Config scroll{};
    LongMenuStrategy long_menu = LongMenuStrategy::Plain;
    std::size_t chunk_size = 10;
    std::size_t speed_zoom_islands = 10;
    SpeedZoom::Config speed_zoom{};
    bool enable_fast_scroll = false;
    FastScrollMode::Config fast_scroll{};
    /// Second (recessed) ranger resolving the < 4 cm fold-back
    /// ambiguity (the board's unused second sensor, Section 4).
    bool use_dual_sensor = false;
    DualRangeResolver::Config dual_sensor{};
    /// Accelerometer-based posture gating (Section 4.3's planned
    /// "context determination"): suspend scrolling when the device is
    /// lowered or laid down.
    bool enable_context_gate = false;
    ContextGate::Config context_gate{};
    /// Physical button arrangement (Sections 4.5 / 6). The single-
    /// large-button layout uses press duration: short = select, long
    /// (>= long_press.threshold_s) = back.
    ButtonLayout button_layout = ButtonLayout::ThreeButtonRight;
    LongPressConfig long_press{};
    /// Duty-cycle the ranger when idle: after `idle_after` without a
    /// selection change or button, sample only every `idle_divider`-th
    /// tick and drop the sensor's battery draw accordingly.
    bool enable_sensor_duty_cycle = false;
    util::Seconds idle_after{5.0};
    int idle_divider = 10;
    util::Seconds firmware_tick{20e-3};
    util::Seconds button_tick{1e-3};
    int telemetry_divider = 2;  // state frame every N firmware ticks
    input::Button::Config button{};
  };

  DistScrollDevice(Config config, const menu::MenuNode& menu_root, sim::EventQueue& queue,
                   sim::Rng rng);

  /// Session reuse: restore the whole device to the state a freshly
  /// constructed one would have for the same (config, menu, rng) — in
  /// place, reusing every buffer and peripheral binding. The owner must
  /// clear the shared event queue FIRST (study::DeviceSession does).
  /// The determinism contract: reset(c, m, r) and a fresh
  /// DistScrollDevice(c, m, q, r) produce bit-identical behaviour;
  /// pinned by the pooled-vs-fresh property test.
  void reset(Config config, const menu::MenuNode& menu_root, sim::Rng rng);

  // --- the physical situation ------------------------------------------
  /// Hot-path (per-sample) provider views. Non-owning: the caller keeps
  /// the callable alive while the device may sample.
  using DistanceProvider = util::FunctionRef<util::Centimeters(util::Seconds)>;
  using TiltProvider = util::FunctionRef<util::Radians(util::Seconds)>;

  /// The hand holding the device: true body-to-device distance over
  /// time. Owning form — a setup-time boundary; the firmware reads it
  /// through a FunctionRef view on the sampling path.
  // ds-lint: allow(no-std-function-hot-path) owning setup-time slot; sampling uses the _ref view
  void set_distance_provider(std::function<util::Centimeters(util::Seconds)> provider);
  /// Non-owning form for hot callers that already own a stable callable.
  void set_distance_provider_ref(DistanceProvider provider);
  /// Device tilt (for the accelerometer; the tilt baselines reuse it).
  // ds-lint: allow(no-std-function-hot-path) owning setup-time slot; sampling uses the _ref view
  void set_tilt_provider(std::function<util::Radians(util::Seconds)> provider);
  void set_tilt_provider_ref(TiltProvider provider);
  /// What the sensor looks at (clothing, lab coat, reflective vest...).
  void set_surface(sensors::SurfaceProfile surface);

  void power_on();
  void power_off();
  [[nodiscard]] bool powered() const { return powered_; }
  /// True once the battery sagged below the regulator cutoff and the
  /// device shut itself down.
  [[nodiscard]] bool browned_out() const { return browned_out_; }

  /// Boot-time calibration: load a persisted record from the data
  /// EEPROM (falls back to the config's default curve when missing or
  /// corrupt). Returns whether a stored calibration was applied.
  bool load_calibration_from_eeprom();
  /// Persist the current curve (e.g. after a calibration sweep).
  void save_calibration_to_eeprom(const CalibrationResult& calibration);
  [[nodiscard]] hw::Eeprom& eeprom() { return eeprom_; }
  [[nodiscard]] bool calibrated_from_eeprom() const { return calibrated_from_eeprom_; }

  // --- the user's fingers ------------------------------------------------
  input::Button& select_button() { return *buttons_[0]; }  // top right, thumb
  input::Button& back_button() { return *buttons_[1]; }    // left side
  input::Button& aux_button() { return *buttons_[2]; }     // left side (chunk paging)

  // --- state inspection (host/study side) --------------------------------
  [[nodiscard]] const menu::MenuCursor& cursor() const { return cursor_; }
  [[nodiscard]] const display::Bt96040& top_display() const { return top_panel_; }
  [[nodiscard]] const display::Bt96040& bottom_display() const { return bottom_panel_; }
  [[nodiscard]] hw::SmartIts& board() { return board_; }
  [[nodiscard]] const hw::SmartIts& board() const { return board_; }
  [[nodiscard]] const IslandMapper& mapper() const { return mapper_; }
  [[nodiscard]] const ScrollController& controller() const { return controller_; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] std::optional<std::size_t> current_chunk() const;
  [[nodiscard]] util::AdcCounts last_counts() const { return last_counts_; }
  /// Posture gate state (always true when the gate is disabled).
  [[nodiscard]] bool scrolling_enabled() const;
  /// Whether the ranger is currently duty-cycled down.
  [[nodiscard]] bool sensor_idle() const { return sensor_idle_; }

  struct SelectionEvent {
    double time_s;
    std::string label;
    bool is_leaf;
    std::size_t depth;  // depth after the event
  };
  [[nodiscard]] const std::vector<SelectionEvent>& selections() const { return selections_; }
  // ds-lint: allow(no-std-function-hot-path) fires per leaf activation (seconds apart), not per sample
  void on_leaf_activated(std::function<void(const SelectionEvent&)> cb) {
    leaf_callback_ = std::move(cb);
  }

  /// Redraws counted (for display-churn diagnostics).
  [[nodiscard]] std::uint64_t redraws() const { return redraws_; }

  /// Contrast potentiometer (user-adjustable, drives display bias).
  input::Potentiometer& contrast_pot() { return pot_; }

  // --- observability ------------------------------------------------------
  /// Attach a structured tracer (nullptr detaches). Binds the tracer's
  /// clock to the device's event queue and propagates to the scroll
  /// controller and ranger. Tracing must never perturb behaviour —
  /// pinned by the tracing on/off property test.
  void attach_tracer(obs::Tracer* tracer);
  [[nodiscard]] obs::Tracer* tracer() const { return tracer_; }

  // --- replay hooks (obs/replay.h) ---------------------------------------
  /// When set, the firmware consumes ADC counts from this source instead
  /// of sampling the ranger through the ADC — the byte-exact replay path
  /// for recorded AdcRead streams. Returning nullopt holds the previous
  /// counts (the zero-order hold a stalled sensor would give). Cycle
  /// accounting is unchanged, so the MCU budget stays comparable.
  // ds-lint: allow(no-std-function-hot-path) replay-only hook; owning slot set once per replay
  void set_counts_override(std::function<std::optional<util::AdcCounts>()> source) {
    counts_override_ = std::move(source);
  }
  /// Deliver a debounced button edge directly (bypassing GPIO bounce and
  /// the debouncer): exactly what the debouncer callback would do,
  /// including the trace event. Used by trace replay to re-drive
  /// recorded ButtonEdge events.
  void inject_button_edge(std::size_t button, bool pressed) { on_button_edge(button, pressed); }

 private:
  void firmware_tick();
  void button_tick();
  void on_button_edge(std::size_t index, bool pressed);
  void rebuild_mapping();
  void apply_entry(std::size_t absolute_index);
  void handle_select();
  void handle_back();
  void handle_aux();
  void advance_chunk();
  void mark_activity(util::Seconds now);
  void redraw();
  void send_state_frame();

  Config config_;
  sim::EventQueue* queue_;
  hw::SmartIts board_;
  hw::Eeprom eeprom_;
  sensors::Gp2d120Model ranger_;
  /// The board's second (recessed) GP2D120. The part is always populated
  /// on the board — always constructed, only sampled when
  /// config_.use_dual_sensor enables the resolver.
  sensors::Gp2d120Model secondary_ranger_;
  sensors::Adxl311Model accel_;
  display::Bt96040 top_panel_;
  display::Bt96040 bottom_panel_;
  display::DisplayDriver top_driver_;
  display::DisplayDriver bottom_driver_;
  input::Potentiometer pot_;
  std::vector<std::unique_ptr<input::Button>> buttons_;
  std::vector<input::Debouncer> debouncers_;
  /// Stable contexts for the debouncers' non-owning edge callbacks.
  struct ButtonCtx {
    DistScrollDevice* device = nullptr;
    std::size_t index = 0;
  };
  std::array<ButtonCtx, 3> button_ctx_{};

  const menu::MenuNode* menu_root_;
  menu::MenuCursor cursor_;

  // Direct members, rebuilt in place by rebuild_mapping(): level changes
  // happen every few seconds of simulated time, and the old
  // unique_ptr-per-rebuild churned the heap on each one. The controller
  // keeps a pointer to mapper_, which is address-stable here.
  IslandMapper mapper_;
  ScrollController controller_;
  std::optional<ChunkedScroll> chunker_;
  std::optional<SpeedZoom> zoom_;
  std::optional<FastScrollMode> fast_scroll_;
  std::optional<DualRangeResolver> dual_resolver_;
  std::optional<ContextGate> context_gate_;

  // Providers: owning slots filled at the setup boundary, read through
  // the non-owning two-pointer views on the sampling path.
  // ds-lint: allow(no-std-function-hot-path) owning setup-time slot behind the FunctionRef view
  std::function<util::Centimeters(util::Seconds)> distance_owner_;
  // ds-lint: allow(no-std-function-hot-path) owning setup-time slot behind the FunctionRef view
  std::function<util::Radians(util::Seconds)> tilt_owner_;
  DistanceProvider distance_provider_;
  TiltProvider tilt_provider_;
  // ds-lint: allow(no-std-function-hot-path) replay-only; a replay session sets it once
  std::function<std::optional<util::AdcCounts>()> counts_override_;
  obs::Tracer* tracer_ = nullptr;

  std::size_t ranger_channel_ = 0;
  std::size_t secondary_channel_ = 0;
  std::size_t accel_x_channel_ = 0;
  std::size_t accel_y_channel_ = 0;
  std::size_t pot_channel_ = 0;
  std::size_t sensor_draw_ = 0;
  std::size_t display_draw_ = 0;

  bool powered_ = false;
  bool browned_out_ = false;
  bool calibrated_from_eeprom_ = false;
  /// Whether the 16 B dual-sensor RAM block has been registered with the
  /// MCU. Reservations are per-board, not per-session: a pooled board
  /// that once ran a dual-sensor session keeps the block.
  bool has_dual_ram_ = false;
  std::size_t firmware_timer_ = 0;
  std::size_t button_timer_ = 0;
  int ticks_since_telemetry_ = 0;
  // Duty-cycle / long-press / activity state.
  bool sensor_idle_ = false;
  int ticks_since_sample_ = 0;
  double last_activity_s_ = 0.0;
  double select_pressed_at_s_ = -1.0;
  std::uint8_t telemetry_seq_ = 0;
  util::AdcCounts last_counts_{0};
  std::uint64_t redraws_ = 0;
  std::vector<SelectionEvent> selections_;
  // ds-lint: allow(no-std-function-hot-path) invoked per leaf activation, not per sample
  std::function<void(const SelectionEvent&)> leaf_callback_;
};

}  // namespace distscroll::core
