// Calibration persistence in the PIC's data EEPROM.
//
// Record layout (24 bytes at a fixed base address):
//   magic 'D','S' | version | a,k,c,near,far as float32 LE | crc8
// CRC covers magic..far. load() returns nullopt on bad magic, unknown
// version or CRC mismatch — the firmware then falls back to the
// datasheet default curve and flags "uncalibrated" on the debug display.
#pragma once

#include <optional>

#include "core/calibration.h"
#include "core/sensor_curve.h"
#include "hw/eeprom.h"

namespace distscroll::core {

class CalibrationStore {
 public:
  static constexpr std::size_t kBaseAddress = 0x10;
  static constexpr std::uint8_t kVersion = 1;
  static constexpr std::size_t kRecordSize = 2 + 1 + 5 * 4 + 1;

  /// Persist a calibration; returns the EEPROM write time the firmware
  /// must wait out.
  static util::Seconds save(hw::Eeprom& eeprom, const CalibrationResult& calibration);

  /// Load and validate; nullopt if the record is missing or corrupt.
  [[nodiscard]] static std::optional<CalibrationResult> load(const hw::Eeprom& eeprom);
};

}  // namespace distscroll::core
