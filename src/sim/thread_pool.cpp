#include "sim/thread_pool.h"

#include <algorithm>

namespace distscroll::sim {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body,
                              std::size_t chunk) {
  if (count == 0) return;
  if (workers_.empty()) {  // single-threaded pool: no handoff at all
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    body_ = &body;
    end_ = count;
    chunk_ = std::max<std::size_t>(1, chunk);
    next_.store(0, std::memory_order_relaxed);
    busy_workers_ = workers_.size();
    ++job_id_;
  }
  work_ready_.notify_all();
  drain();  // the caller participates
  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [this] { return busy_workers_ == 0; });
  body_ = nullptr;
}

void ThreadPool::drain() {
  for (;;) {
    const std::size_t begin = next_.fetch_add(chunk_, std::memory_order_relaxed);
    if (begin >= end_) return;
    const std::size_t stop = std::min(end_, begin + chunk_);
    for (std::size_t i = begin; i < stop; ++i) (*body_)(i);
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t last_job = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] { return stopping_ || job_id_ != last_job; });
      if (stopping_) return;
      last_job = job_id_;
    }
    drain();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--busy_workers_ == 0) work_done_.notify_one();
    }
  }
}

}  // namespace distscroll::sim
