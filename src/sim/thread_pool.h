// Fixed worker pool with a chunked work queue.
//
// Host-side parallelism for the experiment harness (the firmware side of
// the simulator stays strictly single-threaded). A pool of N-1 worker
// threads plus the calling thread drain a [0, count) index range in
// chunks claimed off an atomic counter, so load-imbalanced cells (a slow
// technique next to a fast one) rebalance dynamically. Determinism is
// the CALLER's contract: bodies must key all randomness on the index
// they receive, never on which thread ran it or in what order (see
// study::SweepRunner).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace distscroll::sim {

class ThreadPool {
 public:
  /// `threads` counts the calling thread; 0 means hardware_concurrency.
  /// threads == 1 spawns no workers and runs everything inline.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that participate in parallel_for (workers + caller).
  [[nodiscard]] std::size_t size() const { return workers_.size() + 1; }

  /// Invoke `body(i)` for every i in [0, count), exactly once each, in
  /// `chunk`-sized contiguous claims. Blocks until all are done. Not
  /// re-entrant: one parallel_for at a time, from one caller thread.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                    std::size_t chunk = 1);

 private:
  void worker_loop();
  void drain();

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  std::uint64_t job_id_ = 0;        // bumped per parallel_for; wakes workers
  std::size_t busy_workers_ = 0;    // workers still inside drain()
  bool stopping_ = false;

  // Current job (written under mutex_ before workers wake).
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t end_ = 0;
  std::size_t chunk_ = 1;
  std::atomic<std::size_t> next_{0};
};

}  // namespace distscroll::sim
