// Discrete-event scheduler.
//
// A classic calendar queue: callbacks scheduled at absolute simulated
// times, dispatched in (time, insertion-order) order so same-time events
// are deterministic. Handles support cancellation (e.g. a button release
// cancelling a pending auto-repeat).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "sim/clock.h"
#include "util/units.h"

namespace distscroll::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;
  using Handle = std::uint64_t;
  static constexpr Handle kInvalidHandle = 0;

  [[nodiscard]] const SimClock& clock() const { return clock_; }
  [[nodiscard]] util::Seconds now() const { return clock_.now(); }

  /// Schedule `cb` at absolute simulated time `when`. Scheduling in the
  /// past clamps to now (the event fires next).
  Handle schedule_at(util::Seconds when, Callback cb) {
    if (when < clock_.now()) when = clock_.now();
    const Handle h = next_handle_++;
    events_.emplace(Key{when.value, seq_++}, Entry{h, std::move(cb)});
    return h;
  }

  Handle schedule_after(util::Seconds delay, Callback cb) {
    return schedule_at(clock_.now() + delay, std::move(cb));
  }

  /// Cancel a pending event; returns false if it already ran or was
  /// cancelled. O(n) — cancellation is rare in our workloads.
  bool cancel(Handle h) {
    for (auto it = events_.begin(); it != events_.end(); ++it) {
      if (it->second.handle == h) {
        events_.erase(it);
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t pending() const { return events_.size(); }

  /// Dispatch the next event; returns false when the queue is empty.
  bool step() {
    if (events_.empty()) return false;
    auto it = events_.begin();
    clock_.advance_to(util::Seconds{it->first.time});
    Callback cb = std::move(it->second.callback);
    events_.erase(it);
    cb();
    return true;
  }

  /// Run until the queue drains or simulated time exceeds `until`.
  /// Returns the number of events dispatched.
  std::size_t run_until(util::Seconds until) {
    std::size_t dispatched = 0;
    while (!events_.empty() && events_.begin()->first.time <= until.value) {
      step();
      ++dispatched;
    }
    // Even if nothing is pending, the caller observed time `until`.
    if (clock_.now() < until) clock_.advance_to(until);
    return dispatched;
  }

  /// Run to exhaustion with a safety cap.
  std::size_t run_all(std::size_t max_events = 10'000'000) {
    std::size_t dispatched = 0;
    while (dispatched < max_events && step()) ++dispatched;
    return dispatched;
  }

 private:
  struct Key {
    double time;
    std::uint64_t seq;
    bool operator<(const Key& o) const {
      if (time != o.time) return time < o.time;
      return seq < o.seq;
    }
  };
  struct Entry {
    Handle handle;
    Callback callback;
  };

  SimClock clock_;
  std::map<Key, Entry> events_;
  std::uint64_t seq_ = 0;
  Handle next_handle_ = 1;
};

}  // namespace distscroll::sim
