// Discrete-event scheduler.
//
// A binary-heap calendar: callbacks scheduled at absolute simulated
// times, dispatched in (time, insertion-order) order so same-time events
// are deterministic. Handles support cancellation (e.g. a button release
// cancelling a pending auto-repeat).
//
// Storage is two flat vectors — the (time, seq) min-heap and a recycled
// slot table holding the callbacks — so steady-state scheduling does no
// per-event node allocation (unlike the std::map calendar this replaced).
// cancel() is O(1): it bumps the slot's generation and the stale heap
// entry is discarded lazily when it reaches the top (the same
// epoch-tagged trick the wireless/arq retransmit timers use).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/clock.h"
#include "util/hot_path.h"
#include "util/units.h"

namespace distscroll::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;
  using Handle = std::uint64_t;
  static constexpr Handle kInvalidHandle = 0;

  [[nodiscard]] const SimClock& clock() const { return clock_; }
  [[nodiscard]] util::Seconds now() const { return clock_.now(); }

  /// Schedule `cb` at absolute simulated time `when`. Scheduling in the
  /// past clamps to now (the event fires next).
  // Steady-state allocation-free: the heap and slot table grow only
  // while the calendar is deeper than it has ever been; a session at
  // its working depth recycles capacity (clear() keeps it). Pinned by
  // the AllocGuard schedule/dispatch test.
  DS_HOT_BEGIN
  Handle schedule_at(util::Seconds when, Callback cb) {
    if (when < clock_.now()) when = clock_.now();
    const std::uint32_t slot = acquire_slot(std::move(cb));
    // ds-lint: allow(no-alloc-markers) amortised growth: no-op at recycled capacity
    heap_.push_back(HeapEntry{when.value, seq_++, slot, slots_[slot].generation});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    ++live_;
    return make_handle(slot, slots_[slot].generation);
  }

  Handle schedule_after(util::Seconds delay, Callback cb) {
    return schedule_at(clock_.now() + delay, std::move(cb));
  }

  /// Cancel a pending event; returns false if it already ran or was
  /// cancelled. O(1): the heap entry goes stale and is skipped lazily.
  bool cancel(Handle h) {
    const std::uint32_t slot = handle_slot(h);
    if (slot >= slots_.size() || slots_[slot].generation != handle_generation(h)) return false;
    release_slot(slot);
    --live_;
    return true;
  }

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t pending() const { return live_; }

  /// Dispatch the next event; returns false when the queue is empty.
  bool step() {
    prune();
    if (heap_.empty()) return false;
    const HeapEntry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    clock_.advance_to(util::Seconds{top.time});
    Callback cb = std::move(slots_[top.slot].callback);
    release_slot(top.slot);
    --live_;
    cb();
    return true;
  }

  /// Run until the queue drains or simulated time exceeds `until`.
  /// Returns the number of events dispatched.
  std::size_t run_until(util::Seconds until) {
    std::size_t dispatched = 0;
    for (;;) {
      prune();
      if (heap_.empty() || heap_.front().time > until.value) break;
      step();
      ++dispatched;
    }
    // Even if nothing is pending, the caller observed time `until`.
    if (clock_.now() < until) clock_.advance_to(until);
    return dispatched;
  }

  /// Run to exhaustion with a safety cap. Hitting the cap with work
  /// still pending is surfaced via truncated() — a runaway sim must not
  /// masquerade as a clean finish.
  std::size_t run_all(std::size_t max_events = 10'000'000) {
    truncated_ = false;
    std::size_t dispatched = 0;
    while (dispatched < max_events && step()) ++dispatched;
    truncated_ = !empty();
    return dispatched;
  }

  /// True when the last run_all() stopped at its event cap with events
  /// still pending (i.e. the simulation did not actually finish).
  [[nodiscard]] bool truncated() const { return truncated_; }

  /// Reset to the just-constructed state — empty calendar, time zero,
  /// seq counter zero — while KEEPING the heap/slot storage capacity.
  /// The session-reuse path: a pooled device's queue is cleared between
  /// cells, so dispatch order (which ties on seq) is bit-identical to a
  /// fresh queue without the fresh allocations.
  void clear() {
    heap_.clear();
    slots_.clear();
    free_slots_.clear();
    live_ = 0;
    seq_ = 0;
    truncated_ = false;
    clock_ = SimClock{};
  }

 private:
  struct HeapEntry {
    double time;
    std::uint64_t seq;  // insertion order; same-time tiebreaker
    std::uint32_t slot;
    std::uint32_t generation;  // stale-entry guard (lazy cancellation)
  };
  // Min-heap on (time, seq) via std:: max-heap algorithms.
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  struct Slot {
    Callback callback;
    std::uint32_t generation = 1;
  };

  static Handle make_handle(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<Handle>(slot) + 1) << 32 | generation;
  }
  static std::uint32_t handle_slot(Handle h) {
    return static_cast<std::uint32_t>(h >> 32) - 1;
  }
  static std::uint32_t handle_generation(Handle h) {
    return static_cast<std::uint32_t>(h);
  }

  std::uint32_t acquire_slot(Callback cb) {
    if (!free_slots_.empty()) {
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      slots_[slot].callback = std::move(cb);
      return slot;
    }
    // ds-lint: allow(no-alloc-markers) cold path: only when deeper than ever before
    slots_.push_back(Slot{std::move(cb), 1});
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  /// Invalidate the slot's outstanding handle/heap entry and recycle it.
  void release_slot(std::uint32_t slot) {
    slots_[slot].callback = nullptr;
    ++slots_[slot].generation;
    // ds-lint: allow(no-alloc-markers) free list never outgrows the slot table
    free_slots_.push_back(slot);
  }

  /// Drop stale (cancelled) entries off the top of the heap.
  void prune() {
    while (!heap_.empty() &&
           slots_[heap_.front().slot].generation != heap_.front().generation) {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
    }
  }
  DS_HOT_END

  SimClock clock_;
  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_ = 0;
  std::uint64_t seq_ = 0;
  bool truncated_ = false;
};

}  // namespace distscroll::sim
