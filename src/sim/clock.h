// Simulated wall clock.
//
// All components (MCU, sensors, human model, wireless link) share one
// SimClock owned by the EventQueue; time only advances when the event
// queue dispatches. Everything is deterministic given the RNG seeds.
#pragma once

#include "util/units.h"

namespace distscroll::sim {

class SimClock {
 public:
  [[nodiscard]] util::Seconds now() const { return now_; }

 private:
  friend class EventQueue;
  void advance_to(util::Seconds t) { now_ = t; }

  util::Seconds now_{0.0};
};

}  // namespace distscroll::sim
