// Deterministic random streams.
//
// Each stochastic component (sensor noise, tremor, packet loss,
// participant sampling) takes its own Rng so experiments are reproducible
// and components' draws don't interleave when the wiring changes.
//
// The engine is xoshiro256++ (Blackman & Vigna), seeded through four
// splitmix64 rounds. The previous std::mt19937_64 engine dominated the
// study benches' flat profile (~40% of exp_scroll_comparison wall time
// between _M_gen_rand and generate_canonical); xoshiro's 4-word state
// lives in registers and a draw is a handful of ALU ops. Distributions
// are inlined for the same reason: libstdc++'s generate_canonical and
// uniform_int_distribution rejection loops cost more than the raw draw.
// Streams are NOT compatible with the mt19937_64 era; committed CSV /
// trace artifacts were regenerated when the engine changed.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>

namespace distscroll::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : seed_(seed) {
    // splitmix64 expansion; guarantees a non-zero xoshiro state even for
    // seed 0 and decorrelates consecutive integer seeds.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  /// Derive an independent child stream; stable for a given (seed, tag)
  /// and independent of how many draws the parent has made.
  [[nodiscard]] Rng fork(std::uint64_t tag) const {
    return Rng(splitmix(seed_ ^ (tag * 0x9E3779B97F4A7C15ull)));
  }

  /// Raw 64-bit draw (xoshiro256++ step).
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1): top 53 bits scaled — one draw, no rejection.
  double uniform01() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Box–Muller with a cached spare: each engine round trip yields TWO
  /// standard normals; a fresh std::normal_distribution per call (an
  /// earlier implementation) discarded half the pair in the hottest
  /// stochastic path (tremor/noise draws inside the trial loop).
  double gaussian(double mean, double stddev) {
    if (stddev <= 0.0) return mean;  // exact mean, no draw consumed
    if (has_spare_) {
      has_spare_ = false;
      return mean + stddev * spare_;
    }
    double u1;
    do {
      u1 = uniform01();
    } while (u1 <= 0.0);
    const double u2 = uniform01();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    spare_ = radius * std::sin(kTwoPi * u2);
    has_spare_ = true;
    return mean + stddev * radius * std::cos(kTwoPi * u2);
  }

  /// Both normals of one Box–Muller round at once. Unlike gaussian(),
  /// this neither reads nor writes the cached spare, so its engine
  /// consumption is invariant to call history: always exactly two raw
  /// draws (modulo the u1 == 0 rejection, probability 2^-53 per round).
  /// gaussian()'s spare cache makes a single call eat 0 or 2 draws
  /// depending on what ran before — batch code that pre-draws noise
  /// arrays must use this primitive (via fill_gaussian) or interleaving
  /// changes would silently shift every downstream stream.
  void gaussian_pair(double mean, double stddev, double& first, double& second) {
    if (stddev <= 0.0) {  // exact mean, no draw consumed (matches gaussian())
      first = mean;
      second = mean;
      return;
    }
    double u1;
    do {
      u1 = uniform01();
    } while (u1 <= 0.0);
    const double u2 = uniform01();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    first = mean + stddev * radius * std::cos(kTwoPi * u2);
    second = mean + stddev * radius * std::sin(kTwoPi * u2);
  }

  /// Fill `out` with normals, consuming the engine IDENTICALLY to
  /// out.size() sequential gaussian() calls: a cached spare satisfies
  /// the first element, full pairs cover the middle, and an odd tail
  /// leaves a spare cached — so scalar and batched callers can be
  /// interleaved on the same stream without divergence (the batched ==
  /// scalar bit-identity contract of the session kernel).
  void fill_gaussian(std::span<double> out, double mean, double stddev) {
    if (stddev <= 0.0) {
      for (double& value : out) value = mean;
      return;
    }
    std::size_t i = 0;
    if (i < out.size() && has_spare_) {
      has_spare_ = false;
      out[i++] = mean + stddev * spare_;
    }
    while (i + 1 < out.size()) {
      gaussian_pair(mean, stddev, out[i], out[i + 1]);
      i += 2;
    }
    if (i < out.size()) out[i] = gaussian(mean, stddev);  // caches the spare
  }

  /// Fill `out` with raw draws — exactly out.size() engine steps, same
  /// stream as out.size() next_u64() calls.
  void fill_u64(std::span<std::uint64_t> out) {
    for (std::uint64_t& value : out) value = next_u64();
  }

  /// Raw engine state snapshot (excludes the Box–Muller spare cache).
  /// Lets tests count draws: step a clone until states match again.
  struct EngineState {
    std::uint64_t word[4];

    friend bool operator==(const EngineState&, const EngineState&) = default;
  };
  [[nodiscard]] EngineState engine_state() const {
    return {{state_[0], state_[1], state_[2], state_[3]}};
  }

  /// Whether a Box–Muller spare is cached (the history gaussian() keys
  /// its consumption on).
  [[nodiscard]] bool has_cached_spare() const { return has_spare_; }

  /// true with probability p.
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// Uniform integer in [lo, hi] inclusive (Lemire multiply-shift with
  /// rejection of the biased low slice — exact, usually zero retries).
  int uniform_int(int lo, int hi) {
    const std::uint64_t range =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(hi) - lo) + 1;
    std::uint64_t x = next_u64();
    unsigned __int128 m = static_cast<unsigned __int128>(x) * range;
    auto low = static_cast<std::uint64_t>(m);
    if (low < range) {
      const std::uint64_t threshold = (0 - range) % range;
      while (low < threshold) {
        x = next_u64();
        m = static_cast<unsigned __int128>(x) * range;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return lo + static_cast<int>(m >> 64);
  }

  double exponential(double mean) {
    if (mean <= 0.0) return 0.0;
    // Inverse CDF on (0,1]: 1 - uniform01() never hits zero, so the log
    // is finite.
    return -mean * std::log(1.0 - uniform01());
  }

 private:
  static constexpr std::uint64_t splitmix(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t seed_;
  std::uint64_t state_[4];
  double spare_ = 0.0;      // cached second Box–Muller normal
  bool has_spare_ = false;
};

}  // namespace distscroll::sim
