// Deterministic random streams.
//
// Each stochastic component (sensor noise, tremor, packet loss,
// participant sampling) takes its own Rng so experiments are reproducible
// and components' draws don't interleave when the wiring changes.
#pragma once

#include <cstdint>
#include <random>

namespace distscroll::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : seed_(seed), engine_(seed) {}

  /// Derive an independent child stream; stable for a given (seed, tag)
  /// and independent of how many draws the parent has made.
  [[nodiscard]] Rng fork(std::uint64_t tag) const {
    return Rng(splitmix(seed_ ^ (tag * 0x9E3779B97F4A7C15ull)));
  }

  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  double gaussian(double mean, double stddev) {
    if (stddev <= 0.0) return mean;
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// true with probability p.
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  double exponential(double mean) {
    if (mean <= 0.0) return 0.0;
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

 private:
  static constexpr std::uint64_t splitmix(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace distscroll::sim
