// Deterministic random streams.
//
// Each stochastic component (sensor noise, tremor, packet loss,
// participant sampling) takes its own Rng so experiments are reproducible
// and components' draws don't interleave when the wiring changes.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>

namespace distscroll::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : seed_(seed), engine_(seed) {}

  /// Derive an independent child stream; stable for a given (seed, tag)
  /// and independent of how many draws the parent has made.
  [[nodiscard]] Rng fork(std::uint64_t tag) const {
    return Rng(splitmix(seed_ ^ (tag * 0x9E3779B97F4A7C15ull)));
  }

  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Box–Muller with a cached spare: each engine round trip yields TWO
  /// standard normals; a fresh std::normal_distribution per call (the
  /// previous implementation) discarded half the pair in the hottest
  /// stochastic path (tremor/noise draws inside the trial loop).
  double gaussian(double mean, double stddev) {
    if (stddev <= 0.0) return mean;  // exact mean, no draw consumed
    if (has_spare_) {
      has_spare_ = false;
      return mean + stddev * spare_;
    }
    double u1;
    do {
      u1 = std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    } while (u1 <= 0.0);
    const double u2 = std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    const double radius = std::sqrt(-2.0 * std::log(u1));
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    spare_ = radius * std::sin(kTwoPi * u2);
    has_spare_ = true;
    return mean + stddev * radius * std::cos(kTwoPi * u2);
  }

  /// true with probability p.
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  double exponential(double mean) {
    if (mean <= 0.0) return 0.0;
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

 private:
  static constexpr std::uint64_t splitmix(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  std::uint64_t seed_;
  std::mt19937_64 engine_;
  double spare_ = 0.0;      // cached second Box–Muller normal
  bool has_spare_ = false;
};

}  // namespace distscroll::sim
