#include "input/button.h"

namespace distscroll::input {

bool Button::press() {
  if (pressed_) return true;
  if (rng_.bernoulli(config_.miss_probability)) return false;
  pressed_ = true;
  emit_bounce(hw::PinLevel::Low);
  return true;
}

void Button::release() {
  if (!pressed_) return;
  pressed_ = false;
  emit_bounce(hw::PinLevel::High);
}

void Button::emit_bounce(hw::PinLevel final_level) {
  const std::uint64_t gen = ++generation_;
  const int edges = rng_.uniform_int(0, config_.max_bounce_edges);
  const double window = config_.max_bounce_duration.value;
  // Emit `edges` alternating spurious transitions inside the bounce
  // window, then the settled level at the end. Work backwards so the
  // last edge is always final_level.
  for (int i = edges; i >= 1; --i) {
    const double at = window * static_cast<double>(i) / static_cast<double>(edges + 1);
    const hw::PinLevel spurious =
        ((edges - i) % 2 == 0) ? (final_level == hw::PinLevel::Low ? hw::PinLevel::High
                                                                    : hw::PinLevel::Low)
                                : final_level;
    queue_->schedule_after(util::Seconds{window - at}, [this, gen, spurious] {
      if (gen != generation_) return;  // a newer press/release supersedes
      gpio_->drive_external(pin_, spurious);
    });
  }
  // Immediate first contact, settled level after the window.
  gpio_->drive_external(pin_, final_level);
  queue_->schedule_after(util::Seconds{window}, [this, gen, final_level] {
    if (gen != generation_) return;
    gpio_->drive_external(pin_, final_level);
  });
}

}  // namespace distscroll::input
