// Push button with mechanical contact bounce.
//
// The prototype has three buttons (paper Section 4.5): two on the left
// for a finger, one top-right for the thumb — selection is "clicking a
// specified button" (Section 5.1). Real switch contacts bounce for a few
// milliseconds on each transition; the model drives a GPIO pin through
// the event queue with a burst of bounce edges so the firmware's
// debouncer is exercised for real.
#pragma once

#include <cstddef>

#include "hw/gpio.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "util/units.h"

namespace distscroll::input {

class Button {
 public:
  struct Config {
    util::Seconds max_bounce_duration{4e-3};
    int max_bounce_edges = 6;
    /// Gloved fingers press more slowly and sometimes only half-press;
    /// probability that a press attempt fails to make contact at all.
    double miss_probability = 0.0;
  };

  Button(Config config, hw::Gpio& gpio, std::size_t pin, sim::EventQueue& queue, sim::Rng rng)
      : config_(config), gpio_(&gpio), pin_(pin), queue_(&queue), rng_(rng) {
    gpio_->set_mode(pin_, hw::PinMode::Input);  // pull-up: idle High
  }

  [[nodiscard]] std::size_t pin() const { return pin_; }
  [[nodiscard]] bool physically_pressed() const { return pressed_; }

  /// Session reuse: released, new bounce stream; bumping the generation
  /// invalidates any in-flight bounce edges (the owner normally clears
  /// the event queue anyway).
  void reset(Config config, sim::Rng rng) {
    config_ = config;
    rng_ = rng;
    pressed_ = false;
    ++generation_;
  }

  /// The (simulated) user presses the button now. Emits bounce edges
  /// then settles Low (active-low wiring). Returns false if the press
  /// missed (glove slip) and nothing was driven.
  bool press();

  /// The user releases; bounces then settles High.
  void release();

 private:
  void emit_bounce(hw::PinLevel final_level);

  Config config_;
  hw::Gpio* gpio_;
  std::size_t pin_;
  sim::EventQueue* queue_;
  sim::Rng rng_;
  bool pressed_ = false;
  std::uint64_t generation_ = 0;  // invalidates in-flight bounce edges
};

}  // namespace distscroll::input
