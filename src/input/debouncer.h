// Firmware-side button debouncer.
//
// Classic counter debouncer as the PIC firmware would run it from a 1 ms
// timer tick: a level change must persist for `stable_ticks` consecutive
// samples before it is accepted. Emits press/release events via
// callbacks.
#pragma once

#include "hw/gpio.h"
#include "util/function_ref.h"

namespace distscroll::input {

class Debouncer {
 public:
  struct Config {
    int stable_ticks = 8;  // 8 ms at a 1 kHz tick: > max bounce window
  };

  /// Non-owning delegate: the debouncer ticks at 1 kHz and its callbacks
  /// are wiring into a long-lived owner (the device), so edges dispatch
  /// through a two-pointer call instead of a heap-backed std::function.
  /// The owner keeps the callable (or context object) alive.
  using Callback = util::FunctionRef<void()>;

  Debouncer() : Debouncer(Config{}) {}
  explicit Debouncer(Config config) : config_(config) {}

  void on_press(Callback cb) { on_press_ = std::move(cb); }
  void on_release(Callback cb) { on_release_ = std::move(cb); }

  /// Session reuse: back to the released steady state. The press and
  /// release callbacks are wiring and survive.
  void reset(Config config) {
    config_ = config;
    stable_level_ = hw::PinLevel::High;
    counter_ = 0;
  }

  /// Debounced state (active-low wiring: Low = pressed).
  [[nodiscard]] bool pressed() const { return stable_level_ == hw::PinLevel::Low; }

  /// Feed one raw sample per firmware tick.
  void tick(hw::PinLevel raw) {
    if (raw == stable_level_) {
      counter_ = 0;
      return;
    }
    if (++counter_ < config_.stable_ticks) return;
    stable_level_ = raw;
    counter_ = 0;
    if (stable_level_ == hw::PinLevel::Low) {
      if (on_press_) on_press_();
    } else {
      if (on_release_) on_release_();
    }
  }

 private:
  Config config_;
  hw::PinLevel stable_level_ = hw::PinLevel::High;
  int counter_ = 0;
  Callback on_press_;
  Callback on_release_;
};

}  // namespace distscroll::input
