// Trimmer potentiometer.
//
// The prototype adjusts display brightness/contrast with a pot (paper
// Section 4.1/4.4). Simple voltage divider: position in [0,1] maps to
// [0, vcc] with a little wiper noise.
#pragma once

#include <algorithm>

#include "sim/random.h"
#include "util/units.h"

namespace distscroll::input {

class Potentiometer {
 public:
  struct Config {
    double vcc = 5.0;
    double wiper_noise_volts = 0.01;
  };

  Potentiometer(Config config, sim::Rng rng) : config_(config), rng_(rng) {}

  /// Session reuse: equivalent to replacing the object — wiper back to
  /// the mid-travel default.
  void reset(Config config, sim::Rng rng) {
    config_ = config;
    rng_ = rng;
    position_ = 0.5;
  }

  void set_position(double position) { position_ = std::clamp(position, 0.0, 1.0); }
  [[nodiscard]] double position() const { return position_; }

  [[nodiscard]] util::Volts output() {
    const double v = position_ * config_.vcc + rng_.gaussian(0.0, config_.wiper_noise_volts);
    return util::Volts{std::clamp(v, 0.0, config_.vcc)};
  }

  /// Contrast level 0..63 as the firmware derives it from the ADC read.
  /// Rounded to nearest so endstop positions survive wiper noise (a
  /// truncating read at position 1.0 reported 62 whenever the noise
  /// draw came out negative).
  [[nodiscard]] std::uint8_t as_contrast_level() {
    const double level = output().value / config_.vcc * 63.0;
    return static_cast<std::uint8_t>(std::clamp(level + 0.5, 0.0, 63.0));
  }

 private:
  Config config_;
  sim::Rng rng_;
  double position_ = 0.5;
};

}  // namespace distscroll::input
