// Bounded multi-producer ingest queue with per-producer lanes and a
// fixed merge order.
//
// The host side of a thousand-device fleet cannot use a free-for-all
// MPSC queue: the interleaving of concurrent pushes would make the
// accepted stream depend on thread scheduling, and this repo's
// determinism contract (DESIGN.md §7/§12) requires ingest results to be
// bit-identical at any thread count. The queue therefore follows the
// same fold-then-merge shape as study::FleetEngine:
//
//   * producers are sharded into LANES (fixed by config, NOT by thread
//     count); each lane is a bounded SPSC ring owned by exactly one
//     producer during the produce phase of a window;
//   * the consumer drains lanes in ASCENDING LANE ORDER between produce
//     phases — the merge order is part of the result's identity;
//   * the ThreadPool barrier between phases is the only synchronisation
//     needed, so the rings are plain memory with no atomics on the push
//     path.
//
// try_push() failing (lane full) is the backpressure signal: the device
// link's ARQ wire sink returns false, the ARQ sender holds the frame in
// its retransmit queue, and the pipeline re-pumps it via
// notify_tx_space() after the consumer drains — PR 1's UART TX
// backpressure hook, reused for host overload.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "wireless/packet.h"

namespace distscroll::host {

/// One wire frame as it came off a device link: the raw encoded image
/// (validated later, in batch, by the consumer) plus the transport
/// metadata framing cannot carry — which device link it arrived on and
/// the simulated arrival time in microseconds.
struct RawRecord {
  std::uint64_t t_us = 0;
  std::uint16_t device_id = 0;
  std::uint8_t len = 0;
  std::array<std::uint8_t, wireless::kMaxEncodedFrame> wire{};
};

class IngestQueue {
 public:
  IngestQueue(std::size_t lanes, std::size_t lane_capacity)
      : lanes_(lanes), capacity_(lane_capacity) {
    for (Lane& lane : lanes_) lane.ring.resize(capacity_);
  }

  [[nodiscard]] std::size_t lanes() const { return lanes_.size(); }
  [[nodiscard]] std::size_t lane_capacity() const { return capacity_; }

  /// Producer side (one producer per lane per phase). False when the
  /// lane is full — the caller must treat this as transport
  /// backpressure, not loss.
  [[nodiscard]] bool try_push(std::size_t lane_index, const RawRecord& record) {
    Lane& lane = lanes_[lane_index];
    if (lane.count == capacity_) return false;
    lane.ring[lane.head] = record;
    lane.head = (lane.head + 1) % capacity_;
    ++lane.count;
    return true;
  }

  [[nodiscard]] std::size_t size(std::size_t lane_index) const {
    return lanes_[lane_index].count;
  }
  [[nodiscard]] std::size_t free(std::size_t lane_index) const {
    return capacity_ - lanes_[lane_index].count;
  }
  /// Total queued across lanes (the queue-depth gauge).
  [[nodiscard]] std::size_t depth() const {
    std::size_t total = 0;
    for (const Lane& lane : lanes_) total += lane.count;
    return total;
  }

  /// Consumer side: pop up to out.size() records from one lane, oldest
  /// first, into `out`. Returns the number popped.
  std::size_t pop_batch(std::size_t lane_index, std::span<RawRecord> out) {
    Lane& lane = lanes_[lane_index];
    std::size_t popped = 0;
    while (popped < out.size() && lane.count > 0) {
      out[popped++] = lane.ring[lane.tail];
      lane.tail = (lane.tail + 1) % capacity_;
      --lane.count;
    }
    return popped;
  }

 private:
  struct Lane {
    std::vector<RawRecord> ring;
    std::size_t head = 0;
    std::size_t tail = 0;
    std::size_t count = 0;
  };
  std::vector<Lane> lanes_;
  std::size_t capacity_;
};

}  // namespace distscroll::host
