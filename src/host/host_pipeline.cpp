#include "host/host_pipeline.h"

#include <algorithm>
#include <memory>

#include "host/device_registry.h"
#include "sim/thread_pool.h"

namespace distscroll::host {

HostIngestResult run_host_ingest(const HostIngestConfig& config,
                                 obs::MetricsRegistry* metrics) {
  HostIngestResult result;
  if (config.devices == 0 || config.report_hz <= 0.0 || config.window_s <= 0.0) {
    result.dstl = ColumnarWriter(config.session_id).finish();
    result.stats.complete = true;
    return result;
  }
  const std::size_t lanes = std::max<std::size_t>(1, config.lanes);
  const std::size_t batch = std::max<std::size_t>(1, config.batch);

  IngestQueue queue(lanes, config.lane_capacity);
  DeviceRegistry registry(config.devices);
  ColumnarWriter writer(config.session_id);

  // Devices are sharded onto lanes contiguously and in id order; the
  // assignment depends only on (devices, lanes), never on threads.
  const double period_s = 1.0 / config.report_hz;
  sim::Rng fleet_rng(config.base_seed);
  std::vector<std::unique_ptr<SimDeviceLink>> links;
  links.reserve(config.devices);
  std::vector<std::vector<std::size_t>> lane_members(lanes);
  for (std::size_t d = 0; d < config.devices; ++d) {
    const std::size_t lane = d * lanes / config.devices;
    links.push_back(std::make_unique<SimDeviceLink>(
        static_cast<std::uint16_t>(d), lane, queue, config.arq, config.faults, period_s,
        config.duration_s, fleet_rng.fork(d)));
    lane_members[lane].push_back(d);
  }

  // Instruments are looked up once, outside the loop (registry contract).
  obs::Counter* m_accepted = nullptr;
  obs::Counter* m_crc = nullptr;
  obs::Counter* m_dup = nullptr;
  obs::Counter* m_too_old = nullptr;
  obs::Counter* m_reordered = nullptr;
  obs::Counter* m_gaps = nullptr;
  obs::Counter* m_shed = nullptr;
  obs::Counter* m_stalls = nullptr;
  obs::Counter* m_mismatch = nullptr;
  obs::Gauge* m_depth = nullptr;
  obs::Histogram* m_latency = nullptr;
  if (metrics != nullptr) {
    m_accepted = &metrics->counter("host_frames_accepted");
    m_crc = &metrics->counter("host_frames_dropped_crc");
    m_dup = &metrics->counter("host_frames_duplicate");
    m_too_old = &metrics->counter("host_frames_too_old");
    m_reordered = &metrics->counter("host_frames_reordered");
    m_gaps = &metrics->counter("host_sequence_gaps");
    m_shed = &metrics->counter("host_reports_shed");
    m_stalls = &metrics->counter("host_backpressure_stalls");
    m_mismatch = &metrics->counter("host_content_mismatches");
    m_depth = &metrics->gauge("host_queue_depth");
    m_latency = &metrics->histogram("host_ingest_latency");
  }

  sim::ThreadPool pool(config.threads);
  HostIngestStats& stats = result.stats;
  std::vector<RawRecord> drained(batch);

  const double run_end_s = config.duration_s + config.drain_grace_s;
  for (std::size_t w = 1;; ++w) {
    double end_s = static_cast<double>(w) * config.window_s;
    const bool last_window = end_s >= run_end_s;
    if (last_window) end_s = run_end_s;

    // Produce phase: each lane stepped by exactly one worker; devices
    // within a lane advance in id order.
    pool.parallel_for(lanes, [&](std::size_t lane) {
      for (const std::size_t d : lane_members[lane]) links[d]->step_window(end_s);
    });

    const std::size_t depth = queue.depth();
    stats.max_queue_depth = std::max(stats.max_queue_depth, depth);
    if (m_depth != nullptr) m_depth->set(static_cast<double>(depth));

    // Drain phase: serial, ascending lane order — the fixed merge order.
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      for (;;) {
        const std::size_t n = queue.pop_batch(lane, drained);
        if (n == 0) break;
        for (std::size_t i = 0; i < n; ++i) {
          const RawRecord& raw = drained[i];
          ++stats.frames_drained;
          const auto view =
              wireless::parse_wire_frame({raw.wire.data(), raw.len});
          if (!view) {
            ++stats.frames_crc_rejected;  // no ack: the device will retry
            continue;
          }
          SimDeviceLink& link = *links[raw.device_id];
          // Ack every VALID frame, duplicates included — the previous
          // ack may itself have been lost (ArqReceiver's rule).
          link.queue_ack(view->seq);
          const DeviceRegistry::Decision decision = registry.admit(raw.device_id, view->seq);
          if (decision.verdict == DeviceRegistry::Verdict::Duplicate ||
              decision.verdict == DeviceRegistry::Verdict::TooOld) {
            continue;
          }
          const auto report = wireless::StateReport::unpack(view->payload);
          if (view->type != wireless::FrameType::State || !report) {
            ++stats.frames_malformed;
            continue;
          }
          if (config.verify_content) {
            const std::uint64_t index = link.index_for_seq(view->seq);
            if (!(link.source().report_at(index) == *report)) {
              ++stats.content_mismatches;
              continue;
            }
          }
          CompactRecord record;
          record.t_us = raw.t_us;
          record.device_id = raw.device_id;
          record.seq = view->seq;
          record.state = *report;
          writer.append(record);
          result.records.push_back(record);
          if (m_latency != nullptr) {
            m_latency->record(end_s - static_cast<double>(raw.t_us) * 1e-6);
          }
        }
      }
    }

    stats.windows = w;
    if (end_s >= config.duration_s) {
      bool pending = false;
      for (const auto& link : links) {
        if (link->pending() > 0) {
          pending = true;
          break;
        }
      }
      if (!pending) {
        stats.complete = true;
        break;
      }
    }
    if (last_window) break;
  }

  // Fold device-side accounting (fixed id order).
  for (const auto& link : links) {
    stats.reports_offered += link->reports_offered();
    stats.reports_shed += link->reports_shed();
    stats.arq_transmissions += link->sender().transmissions();
    stats.arq_retransmissions += link->sender().retransmissions();
    stats.arq_drops_retry_exhausted += link->sender().drops_retry_exhausted();
    stats.backpressure_stalls += link->backpressure_stalls();
    stats.link_frames_lost += link->frames_lost();
    stats.link_frames_corrupted += link->frames_corrupted();
    stats.link_frames_reordered += link->frames_reordered();
    stats.acks_lost += link->acks_lost();
  }
  stats.frames_accepted = registry.accepted();
  stats.frames_reordered = registry.reordered();
  stats.frames_duplicate = registry.duplicates();
  stats.frames_too_old = registry.too_old();
  stats.sequence_gaps = registry.gaps();
  stats.devices_seen = registry.devices_seen();

  if (metrics != nullptr) {
    m_accepted->set(stats.frames_accepted);
    m_crc->set(stats.frames_crc_rejected);
    m_dup->set(stats.frames_duplicate);
    m_too_old->set(stats.frames_too_old);
    m_reordered->set(stats.frames_reordered);
    m_gaps->set(stats.sequence_gaps);
    m_shed->set(stats.reports_shed);
    m_stalls->set(stats.backpressure_stalls);
    m_mismatch->set(stats.content_mismatches);
  }

  result.dstl = writer.finish();
  return result;
}

}  // namespace distscroll::host
