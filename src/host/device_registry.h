// Per-device sequence bookkeeping for the multi-device ingest pipeline.
//
// Every simulated DistScroll device numbers its telemetry frames with an
// independent 8-bit ARQ sequence; the host sees all of those streams
// interleaved (plus ARQ retransmissions, which arrive late, duplicated
// or out of order). The registry is the single authority on what the
// host ACCEPTS: it keeps, per device id, the highest sequence seen and a
// 64-frame seen-bitmap (the same sliding-window dedupe ArqReceiver
// uses), and classifies every arriving frame as
//
//   Accept           in-order or a forward jump (skipped frames are
//                    counted as gaps — they may be filled later),
//   AcceptReordered  a late frame landing in a previously-counted gap
//                    (the gap count is decremented: the hole was filled),
//   Duplicate        already delivered (retransmission raced its ack),
//   TooOld           behind the 64-frame dedupe horizon — dropped, since
//                    "duplicate" and "ancient" cannot be told apart.
//
// The accepted stream per device is therefore exactly-once: a frame
// sequence number is accepted at most once while it is inside the
// horizon, which is what makes the downstream columnar compaction a
// faithful record (tests/host_test.cpp holds the exactly-once property
// under loss + reorder + duplication fault injection).
#pragma once

#include <cstdint>
#include <vector>

namespace distscroll::host {

class DeviceRegistry {
 public:
  enum class Verdict : std::uint8_t {
    Accept,
    AcceptReordered,
    Duplicate,
    TooOld,
  };

  struct Decision {
    Verdict verdict = Verdict::Accept;
    /// Frames newly skipped by a forward jump (0 unless Accept).
    std::uint16_t gap_delta = 0;
  };

  /// `max_devices` bounds the id space; admit() of an id >= max_devices
  /// is classified TooOld (counted, never accepted) rather than growing
  /// state on attacker-controlled input.
  explicit DeviceRegistry(std::size_t max_devices);

  Decision admit(std::uint16_t device_id, std::uint8_t seq);

  struct DeviceStats {
    bool seen = false;
    std::uint8_t highest_seq = 0;
    std::uint64_t seen_mask = 0;  // bit i = (highest_seq - i) delivered
    std::uint64_t accepted = 0;
    std::uint64_t reordered = 0;  // subset of accepted
    std::uint64_t duplicates = 0;
    std::uint64_t too_old = 0;
    /// Sequence slots skipped by forward jumps and not (yet) filled by a
    /// late frame. Transiently over-counts while a reordered frame is in
    /// flight; settles once the stream drains.
    std::uint64_t gaps = 0;
  };

  [[nodiscard]] const DeviceStats& stats(std::uint16_t device_id) const {
    return devices_[device_id];
  }
  [[nodiscard]] std::size_t max_devices() const { return devices_.size(); }
  /// Devices that have had at least one frame admitted.
  [[nodiscard]] std::size_t devices_seen() const { return devices_seen_; }

  // Totals across all devices (each also per-device via stats()).
  [[nodiscard]] std::uint64_t accepted() const { return accepted_; }
  [[nodiscard]] std::uint64_t reordered() const { return reordered_; }
  [[nodiscard]] std::uint64_t duplicates() const { return duplicates_; }
  [[nodiscard]] std::uint64_t too_old() const { return too_old_; }
  [[nodiscard]] std::uint64_t gaps() const { return gaps_; }

  /// Forget every stream (fresh session); capacity is kept.
  void clear();

 private:
  std::vector<DeviceStats> devices_;
  std::size_t devices_seen_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t reordered_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t too_old_ = 0;
  std::uint64_t gaps_ = 0;
};

}  // namespace distscroll::host
