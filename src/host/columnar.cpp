#include "host/columnar.h"

#include <array>
#include <fstream>
#include <iterator>

#include "util/checkpoint_io.h"
#include "util/crc.h"

namespace distscroll::host {
namespace {

constexpr std::uint32_t kDstlMagic = 0x4C545344u;  // "DSTL" little-endian
constexpr std::size_t kColumnCount = 8;
// Fixed-size header (magic + version + session + count) and trailer (crc32).
constexpr std::size_t kHeaderBytes = 4 + 2 + 2 + 4;
constexpr std::size_t kTrailerBytes = 4;

void put_column(util::ByteWriter& writer, std::vector<std::uint8_t>& out,
                const std::vector<std::uint8_t>& column) {
  writer.u32(static_cast<std::uint32_t>(column.size()));
  out.insert(out.end(), column.begin(), column.end());
}

[[nodiscard]] std::uint32_t read_u32_le(std::span<const std::uint8_t> bytes, std::size_t at) {
  std::uint32_t value = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(bytes[at + i]) << (8 * i);
  }
  return value;
}

/// Slice the next length-prefixed column out of `bytes`. The length is
/// validated against the remaining payload before the span is formed.
[[nodiscard]] bool get_column(std::span<const std::uint8_t> bytes, std::size_t& cursor,
                              std::size_t payload_end, std::span<const std::uint8_t>& column) {
  if (payload_end - cursor < 4) return false;
  const std::uint32_t len = read_u32_le(bytes, cursor);
  cursor += 4;
  if (payload_end - cursor < len) return false;
  column = bytes.subspan(cursor, len);
  cursor += len;
  return true;
}

}  // namespace

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80u);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

bool get_varint(std::span<const std::uint8_t> bytes, std::size_t& cursor,
                std::uint64_t& value) {
  std::uint64_t result = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    if (cursor >= bytes.size()) return false;
    const std::uint8_t byte = bytes[cursor++];
    result |= static_cast<std::uint64_t>(byte & 0x7Fu) << (7 * i);
    if ((byte & 0x80u) == 0) {
      value = result;
      return true;
    }
  }
  return false;  // > 10 bytes cannot be a valid u64 varint
}

void ColumnarWriter::append(const CompactRecord& record) {
  put_varint(device_ids_, record.device_id);
  if (count_ == 0) {
    put_varint(times_, record.t_us);
  } else {
    // Delta mod 2^64 in unsigned arithmetic (signed subtraction would
    // overflow on wild timestamps); the bit pattern zigzags the same.
    put_varint(times_, zigzag(static_cast<std::int64_t>(record.t_us - prev_t_us_)));
  }
  prev_t_us_ = record.t_us;
  seqs_.push_back(record.seq);
  const auto adc = static_cast<std::int64_t>(record.state.adc_counts);
  put_varint(adcs_, zigzag(adc - prev_adc_));
  prev_adc_ = adc;
  depths_.push_back(record.state.menu_depth);
  cursors_.push_back(record.state.cursor_index);
  levels_.push_back(record.state.level_size);
  buttons_.push_back(record.state.buttons);
  ++count_;
}

std::vector<std::uint8_t> ColumnarWriter::finish() const {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + kColumnCount * 4 + device_ids_.size() + times_.size() +
              seqs_.size() + adcs_.size() + depths_.size() + cursors_.size() + levels_.size() +
              buttons_.size() + kTrailerBytes);
  util::ByteWriter writer(out);
  writer.u32(kDstlMagic);
  writer.u32(static_cast<std::uint32_t>(kDstlFormatVersion) |
             (static_cast<std::uint32_t>(session_id_) << 16));
  writer.u32(count_);
  put_column(writer, out, device_ids_);
  put_column(writer, out, times_);
  put_column(writer, out, seqs_);
  put_column(writer, out, adcs_);
  put_column(writer, out, depths_);
  put_column(writer, out, cursors_);
  put_column(writer, out, levels_);
  put_column(writer, out, buttons_);
  writer.u32(util::crc32(out));
  return out;
}

void ColumnarWriter::clear() {
  count_ = 0;
  prev_t_us_ = 0;
  prev_adc_ = 0;
  device_ids_.clear();
  times_.clear();
  seqs_.clear();
  adcs_.clear();
  depths_.clear();
  cursors_.clear();
  levels_.clear();
  buttons_.clear();
}

std::vector<std::uint8_t> encode_dstl(std::span<const CompactRecord> records,
                                      std::uint16_t session_id) {
  ColumnarWriter writer(session_id);
  for (const CompactRecord& record : records) writer.append(record);
  return writer.finish();
}

std::optional<std::vector<CompactRecord>> decode_dstl(std::span<const std::uint8_t> bytes,
                                                      std::uint16_t* session_id) {
  if (bytes.size() < kHeaderBytes + kColumnCount * 4 + kTrailerBytes) return std::nullopt;
  const std::size_t payload_end = bytes.size() - kTrailerBytes;
  const std::uint32_t stored_crc = read_u32_le(bytes, payload_end);
  if (util::crc32(bytes.subspan(0, payload_end)) != stored_crc) return std::nullopt;

  if (read_u32_le(bytes, 0) != kDstlMagic) return std::nullopt;
  const std::uint32_t version_and_session = read_u32_le(bytes, 4);
  if ((version_and_session & 0xFFFFu) != kDstlFormatVersion) return std::nullopt;
  const auto session = static_cast<std::uint16_t>(version_and_session >> 16);
  const std::uint32_t count = read_u32_le(bytes, 8);
  // Cheapest possible count sanity: the seq column alone stores one raw
  // byte per record, so a count beyond the container size is a lie and
  // must be rejected before it can size an allocation.
  if (count > payload_end) return std::nullopt;

  std::size_t cursor = kHeaderBytes;
  std::array<std::span<const std::uint8_t>, kColumnCount> columns{};
  for (std::size_t i = 0; i < kColumnCount; ++i) {
    if (!get_column(bytes, cursor, payload_end, columns[i])) return std::nullopt;
  }
  if (cursor != payload_end) return std::nullopt;  // trailing garbage

  const std::span<const std::uint8_t> device_col = columns[0];
  const std::span<const std::uint8_t> time_col = columns[1];
  const std::span<const std::uint8_t> seq_col = columns[2];
  const std::span<const std::uint8_t> adc_col = columns[3];
  const std::span<const std::uint8_t> depth_col = columns[4];
  const std::span<const std::uint8_t> cursor_col = columns[5];
  const std::span<const std::uint8_t> level_col = columns[6];
  const std::span<const std::uint8_t> button_col = columns[7];
  if (seq_col.size() != count || depth_col.size() != count || cursor_col.size() != count ||
      level_col.size() != count || button_col.size() != count) {
    return std::nullopt;
  }

  std::vector<CompactRecord> records;
  records.reserve(count);
  std::size_t device_cursor = 0;
  std::size_t time_cursor = 0;
  std::size_t adc_cursor = 0;
  std::uint64_t prev_t_us = 0;
  std::int64_t prev_adc = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    CompactRecord record;
    std::uint64_t device = 0;
    if (!get_varint(device_col, device_cursor, device) || device > 0xFFFFu) {
      return std::nullopt;
    }
    record.device_id = static_cast<std::uint16_t>(device);
    std::uint64_t time_field = 0;
    if (!get_varint(time_col, time_cursor, time_field)) return std::nullopt;
    if (i == 0) {
      record.t_us = time_field;
    } else {
      record.t_us = prev_t_us + static_cast<std::uint64_t>(unzigzag(time_field));
    }
    prev_t_us = record.t_us;
    record.seq = seq_col[i];
    std::uint64_t adc_field = 0;
    if (!get_varint(adc_col, adc_cursor, adc_field)) return std::nullopt;
    // Unsigned mod-2^64 sum: a mathematically negative adc wraps to a
    // value far above 0xFFFF, so one range check rejects both
    // directions without signed overflow on hostile deltas.
    const std::uint64_t adc =
        static_cast<std::uint64_t>(prev_adc) + static_cast<std::uint64_t>(unzigzag(adc_field));
    if (adc > 0xFFFF) return std::nullopt;
    record.state.adc_counts = static_cast<std::uint16_t>(adc);
    prev_adc = static_cast<std::int64_t>(adc);
    record.state.menu_depth = depth_col[i];
    record.state.cursor_index = cursor_col[i];
    record.state.level_size = level_col[i];
    record.state.buttons = button_col[i];
    records.push_back(record);
  }
  // Varint columns must be consumed exactly: leftover bytes mean the
  // declared count disagrees with the column contents.
  if (device_cursor != device_col.size() || time_cursor != time_col.size() ||
      adc_cursor != adc_col.size()) {
    return std::nullopt;
  }
  if (session_id != nullptr) *session_id = session;
  return records;
}

bool write_dstl_file(const std::string& path, std::span<const std::uint8_t> container) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(container.data()),
            static_cast<std::streamsize>(container.size()));
  return out.good();
}

std::optional<std::vector<std::uint8_t>> read_dstl_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  if (in.bad()) return std::nullopt;
  return bytes;
}

void write_jsonl(std::ostream& out, std::span<const CompactRecord> records) {
  for (const CompactRecord& record : records) {
    out << "{\"t_us\":" << record.t_us << ",\"device\":" << record.device_id
        << ",\"seq\":" << static_cast<unsigned>(record.seq)
        << ",\"adc\":" << record.state.adc_counts
        << ",\"depth\":" << static_cast<unsigned>(record.state.menu_depth)
        << ",\"cursor\":" << static_cast<unsigned>(record.state.cursor_index)
        << ",\"level\":" << static_cast<unsigned>(record.state.level_size)
        << ",\"buttons\":" << static_cast<unsigned>(record.state.buttons) << "}\n";
  }
}

bool write_jsonl_file(const std::string& path, std::span<const CompactRecord> records) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  write_jsonl(out, records);
  return out.good();
}

}  // namespace distscroll::host
