// Columnar compaction of the accepted telemetry stream: the "DSTL"
// container.
//
// The ingest pipeline accepts hundreds of thousands of StateReport
// frames per session; keeping them as decoded structs (or as JSONL)
// wastes an order of magnitude over what the data contains. Telemetry
// columns are individually tiny-entropy — timestamps are near-periodic,
// ADC counts drift slowly, the u8 fields barely move — so each field is
// stored as its own column with the encoding that fits it:
//
//   column       encoding
//   device_id    LEB128 varint per record (ids are small)
//   t_us         varint: first record absolute, then zigzag(delta) —
//                deltas across a lane-merged stream can be negative
//   seq          raw u8 (wraps; deltas would not help)
//   adc_counts   zigzag(delta vs previous record) varint
//   menu_depth   raw u8
//   cursor_index raw u8
//   level_size   raw u8
//   buttons      raw u8
//
// Container layout (little-endian, written field by field — mirrors
// obs/trace_io's DSTR container, so golden artifacts byte-compare):
//
//   offset  size  field
//   0       4     magic "DSTL"
//   4       2     format version (1)
//   6       2     session id (0 = unspecified; 2 = the canonical
//                 8-device ingest session, tests/host_test.cpp)
//   8       4     record count N
//   12      ...   8 columns, each: u32 byte length + bytes
//   end-4   4     CRC-32 over everything before this field
//
// decode_dstl() is the attack surface the byte-mutation fuzzer hammers:
// every read is bounds-checked, column lengths are validated against
// the remaining bytes BEFORE any allocation is sized from them, and a
// declared record count larger than the container is rejected outright
// (the seq column alone needs one byte per record). Decode either
// returns the exact record vector that was encoded or nullopt — never a
// crash, never an over-read (tests/host_fuzz_test.cpp, asan flavour).
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "wireless/packet.h"

namespace distscroll::host {

inline constexpr std::uint16_t kDstlFormatVersion = 1;
inline constexpr std::uint16_t kCanonicalHostIngestSession = 2;

/// One accepted telemetry frame, fully decoded.
struct CompactRecord {
  std::uint64_t t_us = 0;  // simulated arrival time, microseconds
  std::uint16_t device_id = 0;
  std::uint8_t seq = 0;
  wireless::StateReport state{};

  bool operator==(const CompactRecord&) const = default;
};

// --- varint helpers (shared with the fuzzer) ------------------------------

/// Append an unsigned LEB128 varint (1..10 bytes).
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value);

/// Bounds-checked varint read: advances `cursor` and returns true on
/// success; false (cursor untouched beyond consumed prefix is NOT
/// guaranteed — treat the stream as dead) on truncation or a varint
/// longer than 10 bytes.
[[nodiscard]] bool get_varint(std::span<const std::uint8_t> bytes, std::size_t& cursor,
                              std::uint64_t& value);

[[nodiscard]] constexpr std::uint64_t zigzag(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}
[[nodiscard]] constexpr std::int64_t unzigzag(std::uint64_t value) {
  return static_cast<std::int64_t>(value >> 1) ^ -static_cast<std::int64_t>(value & 1);
}

// --- streaming encoder ----------------------------------------------------

/// Append-only column builder: the ingest pipeline feeds accepted
/// records one at a time (no row buffer is retained) and finish()
/// serialises the container. Memory is O(encoded bytes).
class ColumnarWriter {
 public:
  explicit ColumnarWriter(std::uint16_t session_id = 0) : session_id_(session_id) {}

  void append(const CompactRecord& record);
  [[nodiscard]] std::uint32_t records() const { return count_; }
  /// Serialise the container (the writer itself stays appendable, so
  /// tests can snapshot mid-stream; the pipeline calls it once).
  [[nodiscard]] std::vector<std::uint8_t> finish() const;
  /// Forget everything, keep capacity (session reuse).
  void clear();

 private:
  std::uint16_t session_id_;
  std::uint32_t count_ = 0;
  std::uint64_t prev_t_us_ = 0;
  std::int64_t prev_adc_ = 0;
  std::vector<std::uint8_t> device_ids_;
  std::vector<std::uint8_t> times_;
  std::vector<std::uint8_t> seqs_;
  std::vector<std::uint8_t> adcs_;
  std::vector<std::uint8_t> depths_;
  std::vector<std::uint8_t> cursors_;
  std::vector<std::uint8_t> levels_;
  std::vector<std::uint8_t> buttons_;
};

/// One-shot convenience over ColumnarWriter.
[[nodiscard]] std::vector<std::uint8_t> encode_dstl(std::span<const CompactRecord> records,
                                                    std::uint16_t session_id = 0);

/// Parse a DSTL container; nullopt on any structural, bounds or CRC
/// failure. `session_id` (when non-null) receives the header field.
[[nodiscard]] std::optional<std::vector<CompactRecord>> decode_dstl(
    std::span<const std::uint8_t> bytes, std::uint16_t* session_id = nullptr);

/// Write/read the container to/from a file. write returns false when
/// the file could not be opened or written.
bool write_dstl_file(const std::string& path, std::span<const std::uint8_t> container);
[[nodiscard]] std::optional<std::vector<std::uint8_t>> read_dstl_file(const std::string& path);

/// JSONL export, one record per line (integers only, so the rendering
/// is byte-stable across platforms):
/// {"t_us":26312,"device":3,"seq":12,"adc":512,"depth":1,"cursor":4,"level":16,"buttons":0}
void write_jsonl(std::ostream& out, std::span<const CompactRecord> records);
bool write_jsonl_file(const std::string& path, std::span<const CompactRecord> records);

}  // namespace distscroll::host
