#include "host/device_registry.h"

namespace distscroll::host {

DeviceRegistry::DeviceRegistry(std::size_t max_devices) : devices_(max_devices) {}

DeviceRegistry::Decision DeviceRegistry::admit(std::uint16_t device_id, std::uint8_t seq) {
  if (device_id >= devices_.size()) {
    ++too_old_;
    return {Verdict::TooOld, 0};
  }
  DeviceStats& dev = devices_[device_id];
  if (!dev.seen) {
    dev.seen = true;
    dev.highest_seq = seq;
    dev.seen_mask = 1;
    ++dev.accepted;
    ++accepted_;
    ++devices_seen_;
    return {Verdict::Accept, 0};
  }
  const auto ahead = static_cast<std::uint8_t>(seq - dev.highest_seq);
  if (ahead != 0 && ahead < 128) {
    // Forward: the window slides by `ahead`; everything in between is a
    // gap until (unless) a late frame fills it.
    dev.seen_mask = (ahead >= 64) ? 0 : (dev.seen_mask << ahead);
    dev.seen_mask |= 1;
    dev.highest_seq = seq;
    const auto gap_delta = static_cast<std::uint16_t>(ahead - 1);
    dev.gaps += gap_delta;
    gaps_ += gap_delta;
    ++dev.accepted;
    ++accepted_;
    return {Verdict::Accept, gap_delta};
  }
  const auto behind = static_cast<std::uint8_t>(dev.highest_seq - seq);
  if (behind < 64) {
    const std::uint64_t bit = 1ull << behind;
    if (dev.seen_mask & bit) {
      ++dev.duplicates;
      ++duplicates_;
      return {Verdict::Duplicate, 0};
    }
    // A late frame landing inside a gap: the hole is filled. Saturating
    // decrement — a late frame that predates the device's FIRST delivered
    // frame fills a hole that was never counted (no forward jump skipped
    // it), and must not drive the counter negative. The totals still
    // settle exactly once the stream drains: decrements are capped by
    // counted gaps, and every remaining fill is a no-op.
    dev.seen_mask |= bit;
    if (dev.gaps > 0) {
      --dev.gaps;
      --gaps_;
    }
    ++dev.reordered;
    ++reordered_;
    ++dev.accepted;
    ++accepted_;
    return {Verdict::AcceptReordered, 0};
  }
  ++dev.too_old;
  ++too_old_;
  return {Verdict::TooOld, 0};
}

void DeviceRegistry::clear() {
  for (DeviceStats& dev : devices_) dev = DeviceStats{};
  devices_seen_ = 0;
  accepted_ = 0;
  reordered_ = 0;
  duplicates_ = 0;
  too_old_ = 0;
  gaps_ = 0;
}

}  // namespace distscroll::host
