// Deterministic per-device telemetry generator for ingest simulations.
//
// A simulated device must be able to answer "what was the i-th report I
// offered to the link?" long after the fact, because the ingest
// pipeline verifies every ACCEPTED frame against the report the device
// claims to have sent (the zero-corruption acceptance check). Storing
// the full history per device would cost O(reports x devices) across a
// 10k-device fleet, so the source is a pure function of (seed, index):
// report_at(i) forks the device RNG by the report index and synthesises
// the StateReport from that child stream alone. Any index can be
// re-derived at any time, in any order, for free.
//
// The synthesized fields stay inside the real device's ranges (10-bit
// ADC, shallow menu tree, 3 buttons) so the wire encoding exercises the
// same value distribution the paper's prototype produces.
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/random.h"
#include "wireless/packet.h"

namespace distscroll::host {

class TelemetrySource {
 public:
  explicit TelemetrySource(sim::Rng rng) : rng_(rng) {}

  /// The i-th report this device offers to its link. Pure: same (seed,
  /// index) -> same report, no draw-order coupling between indices.
  [[nodiscard]] wireless::StateReport report_at(std::uint64_t index) const {
    sim::Rng draw = rng_.fork(index);
    wireless::StateReport report;
    // Slow sweep through the pot's travel plus jitter, clamped to the
    // 10-bit ADC range the firmware reports.
    const int base = 200 + static_cast<int>(index % 97) * 7;
    report.adc_counts = static_cast<std::uint16_t>(
        std::clamp(base + draw.uniform_int(-25, 25), 0, 1023));
    report.menu_depth = static_cast<std::uint8_t>(draw.uniform_int(0, 3));
    report.level_size = static_cast<std::uint8_t>(4 + draw.uniform_int(0, 12));
    report.cursor_index = static_cast<std::uint8_t>(draw.uniform_int(0, report.level_size - 1));
    report.buttons = static_cast<std::uint8_t>(draw.uniform_int(0, 7));
    return report;
  }

 private:
  sim::Rng rng_;
};

}  // namespace distscroll::host
