#include "host/sim_link.h"

#include <cmath>
#include <utility>
#include <vector>

namespace distscroll::host {

namespace {
// Stream tags for the per-device RNG forks. Fixed forever: changing a
// tag re-rolls every committed artifact (golden DSTL, bench baseline).
constexpr std::uint64_t kSourceStream = 0;
constexpr std::uint64_t kChannelStream = 1;
constexpr std::uint64_t kAckStream = 2;
constexpr std::uint64_t kPhaseStream = 3;
}  // namespace

SimDeviceLink::SimDeviceLink(std::uint16_t device_id, std::size_t lane, IngestQueue& queue,
                             const wireless::ArqConfig& arq, const LinkFaultConfig& faults,
                             double report_period_s, double duration_s,
                             const sim::Rng& device_rng)
    : device_id_(device_id),
      lane_(lane),
      queue_(&queue),
      faults_(faults),
      report_period_s_(report_period_s),
      duration_s_(duration_s),
      sender_(arq, events_),
      source_(device_rng.fork(kSourceStream)),
      channel_rng_(device_rng.fork(kChannelStream)),
      ack_rng_(device_rng.fork(kAckStream)) {
  sender_.set_wire_sink([this](std::span<const std::uint8_t> wire) { return wire_sink(wire); });
  // Stagger device start phases across one report period so a 10k-device
  // fleet doesn't fire every tick at the same instant (which would be
  // both unrealistic and a worst-case burst into the lanes).
  sim::Rng phase = device_rng.fork(kPhaseStream);
  const double offset_s = phase.uniform01() * report_period_s_;
  events_.schedule_after(util::Seconds{offset_s}, [this] { telemetry_tick(); });
}

void SimDeviceLink::telemetry_tick() {
  const std::uint64_t index = reports_offered_++;
  const wireless::StateReport report = source_.report_at(index);
  // The seq this send will get, if accepted: next_seq_ and
  // frames_accepted_ both advance only on accepted sends, so they track.
  const auto seq = static_cast<std::uint8_t>(sender_.frames_accepted() & 0xFF);
  std::vector<std::uint8_t> payload(wireless::StateReport::kPackedSize);
  report.pack_into(
      std::span<std::uint8_t, wireless::StateReport::kPackedSize>(payload.data(), payload.size()));
  if (sender_.send(wireless::FrameType::State, std::move(payload))) {
    seq_to_index_[seq] = index;
  } else {
    ++reports_shed_;  // ARQ queue full: device RAM budget says drop new
  }
  const double next_s = events_.now().value + report_period_s_;
  if (next_s <= duration_s_) {
    events_.schedule_after(util::Seconds{report_period_s_}, [this] { telemetry_tick(); });
  }
}

bool SimDeviceLink::wire_sink(std::span<const std::uint8_t> wire) {
  // Room check BEFORE any fault roll: a backpressured attempt must not
  // consume channel randomness (the retry is the "real" transmission).
  // Needs one slot for this frame plus one for a held reordered frame.
  const std::size_t needed = held_valid_ ? 2u : 1u;
  if (queue_->free(lane_) < needed) {
    ++backpressure_stalls_;
    return false;  // ARQ keeps the frame; step_window() re-pumps later
  }
  if (channel_rng_.bernoulli(faults_.frame_loss)) {
    ++frames_lost_;
    // The frame behind a lost one still arrives.
    deliver_held();
    return true;  // the device believes it transmitted; timeout recovers
  }
  RawRecord record;
  record.t_us = static_cast<std::uint64_t>(std::llround(events_.now().value * 1e6));
  record.device_id = device_id_;
  record.len = static_cast<std::uint8_t>(wire.size());
  for (std::size_t i = 0; i < wire.size(); ++i) record.wire[i] = wire[i];
  if (channel_rng_.bernoulli(faults_.bit_flip)) {
    // Exactly one bit: always caught by CRC-8 (see header).
    const int bit = channel_rng_.uniform_int(0, static_cast<int>(wire.size()) * 8 - 1);
    record.wire[static_cast<std::size_t>(bit) / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    ++frames_corrupted_;
  }
  if (!held_valid_ && channel_rng_.bernoulli(faults_.reorder)) {
    held_ = record;
    held_valid_ = true;
    ++frames_reordered_;
    return true;  // delivered later, after its successor
  }
  deliver(record);
  deliver_held();
  return true;
}

void SimDeviceLink::deliver(const RawRecord& record) {
  // Cannot fail: wire_sink checked for room up front, and the serial
  // consumer never pushes.
  const bool pushed = queue_->try_push(lane_, record);
  static_cast<void>(pushed);
}

void SimDeviceLink::deliver_held() {
  if (!held_valid_) return;
  held_valid_ = false;
  deliver(held_);
}

void SimDeviceLink::queue_ack(std::uint8_t seq) {
  if (ack_rng_.bernoulli(faults_.ack_loss)) {
    ++acks_lost_;
    return;
  }
  std::array<std::uint8_t, 5> buf{};
  const std::size_t n = wireless::encode_into(wireless::FrameType::Ack, seq, {}, buf);
  ack_buffer_.insert(ack_buffer_.end(), buf.begin(), buf.begin() + static_cast<long>(n));
}

void SimDeviceLink::step_window(double end_s) {
  // Acks the consumer queued during the last drain reach the device now.
  for (const std::uint8_t byte : ack_buffer_) sender_.on_ack_byte(byte);
  ack_buffer_.clear();
  // The lane was just drained: frames stalled on backpressure retry.
  sender_.notify_tx_space();
  events_.run_until(util::Seconds{end_s});
}

}  // namespace distscroll::host
