// One simulated DistScroll device wired to the host through a faulty
// channel.
//
// Each link owns a full device-side stack — telemetry source, ARQ
// sender with its own EventQueue (device-local time), and a fault
// injector between the sender's wire sink and the host's ingest lane:
//
//   TelemetrySource ─▶ ArqSender ─▶ [loss / bit-flip / reorder] ─▶ lane
//                         ▲                                         │
//                         └──── acks (with ack-loss) ◀── consumer ──┘
//
// The fault model flips exactly ONE bit per corruption event. CRC-8
// detects every single-bit error, so a corrupted frame is always
// rejected at batch validation — "zero accepted-frame corruption" is a
// provable property, not a probabilistic one (multi-bit patterns can
// collide with CRC-8 at ~2^-8 and would make the acceptance criterion
// flaky by construction).
//
// Backpressure: when the lane lacks room for this frame (plus a held
// reordered frame), the wire sink refuses and the ARQ sender keeps the
// frame in its retransmit queue (needs_tx) — PR 1's UART TX
// backpressure contract. The pipeline re-pumps via step_window() after
// the consumer drains the lane. Under sustained overload the ARQ queue
// itself fills and send() sheds new reports, counted per device.
//
// Every random draw comes from streams forked off the per-device RNG
// and is consumed in device-local event order, so a link's behaviour is
// a pure function of (seed, config) — independent of which thread steps
// it, which is what makes whole-fleet ingest bit-identical across
// thread counts.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "host/ingest_queue.h"
#include "host/telemetry_source.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "wireless/arq.h"
#include "wireless/packet.h"

namespace distscroll::host {

struct LinkFaultConfig {
  double frame_loss = 0.0;  // P(frame vanishes in flight)
  double bit_flip = 0.0;    // P(one bit of the wire image flips)
  double reorder = 0.0;     // P(frame held and delivered after its successor)
  double ack_loss = 0.0;    // P(host ack never reaches the device)
};

class SimDeviceLink {
 public:
  SimDeviceLink(std::uint16_t device_id, std::size_t lane, IngestQueue& queue,
                const wireless::ArqConfig& arq, const LinkFaultConfig& faults,
                double report_period_s, double duration_s, const sim::Rng& device_rng);

  SimDeviceLink(const SimDeviceLink&) = delete;
  SimDeviceLink& operator=(const SimDeviceLink&) = delete;

  /// Advance this device's local simulation to absolute time `end_s`:
  /// consume acks queued by the consumer since the last window, give the
  /// transport-stalled frames another chance (the lane was just
  /// drained), then run telemetry ticks and retransmit timers.
  void step_window(double end_s);

  /// Consumer side (serial drain phase): queue an ack for `seq`. Subject
  /// to ack-loss injection; surviving acks are consumed at the start of
  /// this device's next step_window().
  void queue_ack(std::uint8_t seq);

  /// Telemetry index of the report carried by ARQ sequence `seq`
  /// (positions shed by a full ARQ queue make the two diverge, so the
  /// mapping is recorded per accepted send). Valid while `seq` is inside
  /// the 256-entry ring — the registry's 64-frame horizon guarantees any
  /// acceptable frame still resolves.
  [[nodiscard]] std::uint64_t index_for_seq(std::uint8_t seq) const {
    return seq_to_index_[seq];
  }

  [[nodiscard]] std::uint16_t device_id() const { return device_id_; }
  [[nodiscard]] std::size_t lane() const { return lane_; }
  [[nodiscard]] const TelemetrySource& source() const { return source_; }
  [[nodiscard]] const wireless::ArqSender& sender() const { return sender_; }
  /// Frames still queued device-side (retransmit queue) — the drain
  /// grace loop runs until every link reports zero.
  [[nodiscard]] std::size_t pending() const { return sender_.queued(); }

  // Fault/flow accounting.
  [[nodiscard]] std::uint64_t reports_offered() const { return reports_offered_; }
  [[nodiscard]] std::uint64_t reports_shed() const { return reports_shed_; }
  [[nodiscard]] std::uint64_t frames_lost() const { return frames_lost_; }
  [[nodiscard]] std::uint64_t frames_corrupted() const { return frames_corrupted_; }
  [[nodiscard]] std::uint64_t frames_reordered() const { return frames_reordered_; }
  [[nodiscard]] std::uint64_t backpressure_stalls() const { return backpressure_stalls_; }
  [[nodiscard]] std::uint64_t acks_lost() const { return acks_lost_; }

 private:
  void telemetry_tick();
  bool wire_sink(std::span<const std::uint8_t> wire);
  void deliver(const RawRecord& record);
  void deliver_held();

  std::uint16_t device_id_;
  std::size_t lane_;
  IngestQueue* queue_;
  LinkFaultConfig faults_;
  double report_period_s_;
  double duration_s_;

  sim::EventQueue events_;
  wireless::ArqSender sender_;
  TelemetrySource source_;
  sim::Rng channel_rng_;
  sim::Rng ack_rng_;

  std::array<std::uint64_t, 256> seq_to_index_{};
  std::vector<std::uint8_t> ack_buffer_;  // encoded ack frames awaiting the device

  RawRecord held_{};      // reorder: one frame delayed behind its successor
  bool held_valid_ = false;

  std::uint64_t reports_offered_ = 0;
  std::uint64_t reports_shed_ = 0;
  std::uint64_t frames_lost_ = 0;
  std::uint64_t frames_corrupted_ = 0;
  std::uint64_t frames_reordered_ = 0;
  std::uint64_t backpressure_stalls_ = 0;
  std::uint64_t acks_lost_ = 0;
};

}  // namespace distscroll::host
