// The multi-device host ingest pipeline: N simulated device links →
// lane-sharded bounded queue → batch validation → per-device sequence
// accounting → columnar compaction.
//
// Execution is WINDOW-PHASED. Simulated time advances in fixed windows
// (window_s); within each window:
//
//   1. produce phase — a parallel_for over LANES steps every device
//      assigned to that lane (each device's own EventQueue: telemetry
//      ticks, retransmit timers, fault rolls). One thread owns a lane
//      for the whole phase, so lane rings need no synchronisation.
//   2. barrier (ThreadPool::parallel_for returns).
//   3. drain phase — single-threaded, lanes drained in ASCENDING lane
//      order, frames in arrival order within a lane: batch CRC
//      validation (parse_wire_frame), DeviceRegistry admission, ack
//      generation back into each device's reverse channel, content
//      verification against the device's pure telemetry source, and
//      ColumnarWriter append for every accepted frame.
//
// Lane assignment is a pure function of (device_id, lanes, devices) and
// the drain order is fixed, so the accepted stream — and therefore the
// DSTL bytes, the metrics JSON, every counter — is bit-identical for
// any `threads` value: threads only change which worker steps a lane,
// never what any lane contains (tests/host_test.cpp pins 1/2/8).
//
// After duration_s the pipeline keeps running drain windows (no new
// telemetry ticks fire) until every device's ARQ queue is empty or
// drain_grace_s is exhausted, so in-flight retransmissions get their
// chance to land; `complete` reports whether the fleet fully drained.
#pragma once

#include <cstdint>
#include <vector>

#include "host/columnar.h"
#include "host/sim_link.h"
#include "obs/metrics.h"
#include "wireless/arq.h"

namespace distscroll::host {

struct HostIngestConfig {
  std::size_t devices = 8;
  // Lanes shard devices contiguously in id order and drain ascending,
  // so with ample capacity the merged stream is device-id order no
  // matter the lane count; lanes shape results only through capacity
  // (backpressure boundaries) — see tests/host_test.cpp.
  std::size_t lanes = 4;
  std::size_t lane_capacity = 256;
  std::size_t batch = 64;         // drain batch size (pop_batch granularity)
  double report_hz = 38.0;        // per-device telemetry rate (PIC tick rate)
  double duration_s = 1.0;        // telemetry generation horizon
  double window_s = 0.02;         // produce/drain cadence; bounds ack turnaround
  double drain_grace_s = 2.0;     // post-duration budget for retransmit recovery
  LinkFaultConfig faults{};
  // ARQ with the initial timeout raised above the worst-case ack
  // turnaround (two windows: ack queued during this window's drain,
  // consumed at the next window's start) so a healthy link never
  // spuriously retransmits.
  wireless::ArqConfig arq{.initial_timeout = util::Seconds{0.12}};
  std::uint64_t base_seed = 0x5EED;
  std::uint16_t session_id = 0;
  std::size_t threads = 1;        // 0 = hardware_concurrency; NOT part of identity
  // Re-derive every accepted frame from its device's pure telemetry
  // source and compare — the zero-corruption acceptance check. Costs a
  // few RNG draws per frame; benches may turn it off after the property
  // pass has run.
  bool verify_content = true;
};

struct HostIngestStats {
  // Device side.
  std::uint64_t reports_offered = 0;
  std::uint64_t reports_shed = 0;       // ARQ queue full at send()
  std::uint64_t arq_transmissions = 0;
  std::uint64_t arq_retransmissions = 0;
  std::uint64_t arq_drops_retry_exhausted = 0;
  std::uint64_t backpressure_stalls = 0;
  // Channel fault injection.
  std::uint64_t link_frames_lost = 0;
  std::uint64_t link_frames_corrupted = 0;
  std::uint64_t link_frames_reordered = 0;
  std::uint64_t acks_lost = 0;
  // Host side.
  std::uint64_t frames_drained = 0;     // popped off the queue
  std::uint64_t frames_crc_rejected = 0;
  std::uint64_t frames_malformed = 0;   // parsed but not a 6-byte State payload
  std::uint64_t frames_accepted = 0;
  std::uint64_t frames_reordered = 0;   // subset of accepted
  std::uint64_t frames_duplicate = 0;
  std::uint64_t frames_too_old = 0;
  std::uint64_t sequence_gaps = 0;      // residual unfilled gaps
  std::uint64_t content_mismatches = 0; // MUST stay 0
  std::uint64_t devices_seen = 0;
  std::size_t max_queue_depth = 0;      // peak total after a produce phase
  std::uint64_t windows = 0;
  bool complete = false;                // fleet fully drained inside grace
};

struct HostIngestResult {
  std::vector<std::uint8_t> dstl;       // finished DSTL container
  std::vector<CompactRecord> records;   // the accepted stream, decoded
  HostIngestStats stats;
};

/// Run a full ingest session. When `metrics` is non-null the pipeline
/// maintains host_* counters, the host_queue_depth gauge and the
/// host_ingest_latency log2 histogram in it; passing the same config
/// must yield byte-identical to_json_fields() output for any
/// config.threads (the metrics half of the bit-identity contract).
HostIngestResult run_host_ingest(const HostIngestConfig& config,
                                 obs::MetricsRegistry* metrics = nullptr);

}  // namespace distscroll::host
