#include "hw/gpio.h"

namespace distscroll::hw {

Gpio::Gpio(std::size_t pin_count) : pins_(pin_count) {}

void Gpio::set_mode(std::size_t pin, PinMode mode) {
  assert(pin < pins_.size());
  pins_[pin].mode = mode;
}

PinMode Gpio::mode(std::size_t pin) const {
  assert(pin < pins_.size());
  return pins_[pin].mode;
}

void Gpio::write(std::size_t pin, PinLevel level) {
  assert(pin < pins_.size());
  assert(pins_[pin].mode == PinMode::Output);
  pins_[pin].level = level;
}

PinLevel Gpio::read(std::size_t pin) const {
  assert(pin < pins_.size());
  return pins_[pin].level;
}

void Gpio::drive_external(std::size_t pin, PinLevel level) {
  assert(pin < pins_.size());
  assert(pins_[pin].mode == PinMode::Input);
  if (pins_[pin].level == level) return;
  pins_[pin].level = level;
  if (pins_[pin].on_edge) pins_[pin].on_edge(pin, level);
}

void Gpio::on_edge(std::size_t pin, EdgeCallback cb) {
  assert(pin < pins_.size());
  pins_[pin].on_edge = std::move(cb);
}

}  // namespace distscroll::hw
