// The Smart-Its board pair (Gellersen et al., cited as [4]/[12] in the
// paper): a base board carrying the PIC 18F452, UART and power, plus an
// add-on board carrying the application peripherals — here the GP2D120
// distance sensor, the ADXL311 accelerometer, two BT96040 displays, three
// push buttons and the contrast potentiometer (paper Fig. 2 / Fig. 3).
//
// SmartIts owns the shared buses and budgets; peripherals are attached
// by the device layer (core::DistScrollDevice), mirroring how the
// physical add-on board plugs onto the base board connectors.
#pragma once

#include <memory>

#include "hw/adc.h"
#include "hw/battery.h"
#include "hw/gpio.h"
#include "hw/i2c.h"
#include "hw/mcu.h"
#include "hw/uart.h"
#include "sim/event_queue.h"
#include "sim/random.h"

namespace distscroll::hw {

class SmartIts {
 public:
  struct Config {
    Mcu::Config mcu{};
    Adc10::Config adc{};
    I2cBus::Config i2c{};
    Uart::Config uart{};
    Battery::Config battery{};
    std::size_t gpio_pins = 8;
  };

  /// Regulator + MCU active draw of the board itself.
  static constexpr double kBoardDrawMa = 12.0;

  SmartIts(Config config, sim::EventQueue& queue, sim::Rng rng)
      : battery_(config.battery),
        mcu_(config.mcu, queue),
        adc_(config.adc, rng.fork(0xADC)),
        i2c_(config.i2c),
        uart_(config.uart),
        gpio_(config.gpio_pins) {
    // Baseline draws of the board itself (regulator + MCU active).
    mcu_draw_ = battery_.add_consumer("base-board+mcu", kBoardDrawMa);
  }

  /// Session reuse: restore the freshly-constructed board state in
  /// place. Rng fork tags match the constructor, so a reset board draws
  /// the exact streams a fresh one would. The owner must have cleared
  /// the shared event queue first (Mcu::reset drops its timers). The
  /// GPIO pin count is fixed at construction.
  void reset(Config config, sim::Rng rng) {
    battery_.reset(config.battery);
    mcu_.reset(config.mcu);
    adc_.reset(config.adc, rng.fork(0xADC));
    i2c_.reset(config.i2c);
    uart_.reset(config.uart);
    gpio_.reset();
    battery_.set_draw(mcu_draw_, kBoardDrawMa);
  }

  [[nodiscard]] Battery& battery() { return battery_; }
  [[nodiscard]] Mcu& mcu() { return mcu_; }
  [[nodiscard]] Adc10& adc() { return adc_; }
  [[nodiscard]] I2cBus& i2c() { return i2c_; }
  [[nodiscard]] Uart& uart() { return uart_; }
  [[nodiscard]] Gpio& gpio() { return gpio_; }

  [[nodiscard]] const Battery& battery() const { return battery_; }
  [[nodiscard]] const Mcu& mcu() const { return mcu_; }

  [[nodiscard]] std::size_t mcu_draw_consumer() const { return mcu_draw_; }

 private:
  Battery battery_;
  Mcu mcu_;
  Adc10 adc_;
  I2cBus i2c_;
  Uart uart_;
  Gpio gpio_;
  std::size_t mcu_draw_;
};

}  // namespace distscroll::hw
