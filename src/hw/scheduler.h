// Cooperative firmware task scheduler.
//
// The Smart-Its firmware is a classic super-loop with a timer tick:
// tasks declare a period and a worst-case cycle cost; the scheduler runs
// due tasks each tick, charges their cycles to the MCU, and detects
// ticks whose total work exceeds the tick's cycle budget (overruns —
// the thing that makes a PIC miss its sampling deadline). Jitter and
// utilisation statistics make the firmware's timing envelope visible.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "hw/mcu.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "util/units.h"

namespace distscroll::hw {

class Scheduler {
 public:
  struct Config {
    util::Seconds tick{1e-3};
  };

  Scheduler(Config config, Mcu& mcu) : config_(config), mcu_(&mcu) {
    budget_cycles_ = static_cast<std::uint64_t>(config_.tick.value * 10e6);  // at 10 MIPS
  }

  /// Register a periodic task. `period_ticks` >= 1; `cycles` is the
  /// task's worst-case execution cost charged per run.
  std::size_t add_task(std::string name, int period_ticks, std::uint64_t cycles,
                       // ds-lint: allow(no-std-function-hot-path) registration is setup-time
                       std::function<void()> body) {
    assert(period_ticks >= 1 && body);
    tasks_.push_back({std::move(name), period_ticks, cycles, std::move(body), 0, 0});
    return tasks_.size() - 1;
  }

  void set_enabled(std::size_t task, bool enabled) {
    assert(task < tasks_.size());
    tasks_[task].enabled = enabled ? 1 : 0;
  }

  /// Start ticking on the MCU timer.
  void start() {
    if (running_) return;
    running_ = true;
    timer_ = mcu_->start_timer(config_.tick, [this] { tick(); });
  }

  void stop() {
    if (!running_) return;
    running_ = false;
    mcu_->stop_timer(timer_);
  }

  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }
  [[nodiscard]] std::uint64_t overruns() const { return overruns_; }
  [[nodiscard]] std::uint64_t runs(std::size_t task) const { return tasks_[task].runs; }

  /// Structured tracing of budget overruns (TickOverrun: a = cycles
  /// spent, b = tick budget). Null detaches.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Publish the scheduler's timing envelope into a metrics registry.
  void export_metrics(obs::MetricsRegistry& registry, const char* prefix = "sched") const {
    std::string p(prefix);
    registry.counter(p + "_ticks").set(ticks_);
    registry.counter(p + "_overruns").set(overruns_);
    registry.gauge(p + "_utilization").set(utilization());
  }

  /// Mean fraction of the tick budget used.
  [[nodiscard]] double utilization() const {
    if (ticks_ == 0) return 0.0;
    return static_cast<double>(used_cycles_) /
           (static_cast<double>(ticks_) * static_cast<double>(budget_cycles_));
  }

 private:
  struct Task {
    std::string name;
    int period_ticks;
    std::uint64_t cycles;
    // ds-lint: allow(no-std-function-hot-path) owning slot filled at add_task; dispatch never rebinds
    std::function<void()> body;
    std::uint64_t runs;
    int phase;  // stagger start; counts up to period
    int enabled = 1;
  };

  void tick() {
    ++ticks_;
    std::uint64_t spent = 0;
    for (auto& task : tasks_) {
      if (!task.enabled) continue;
      if (++task.phase < task.period_ticks) continue;
      task.phase = 0;
      task.body();
      mcu_->charge_cycles(task.cycles);
      spent += task.cycles;
      ++task.runs;
    }
    used_cycles_ += spent;
    if (spent > budget_cycles_) {
      ++overruns_;
      DS_TRACE(tracer_, obs::EventKind::TickOverrun, static_cast<std::uint32_t>(spent),
               static_cast<std::uint32_t>(budget_cycles_));
    }
  }

  Config config_;
  Mcu* mcu_;
  obs::Tracer* tracer_ = nullptr;
  std::vector<Task> tasks_;
  std::uint64_t budget_cycles_;
  std::size_t timer_ = 0;
  bool running_ = false;
  std::uint64_t ticks_ = 0;
  std::uint64_t overruns_ = 0;
  std::uint64_t used_cycles_ = 0;
};

}  // namespace distscroll::hw
