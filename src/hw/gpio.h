// Digital I/O pins.
//
// The three push buttons of the prototype hang off GPIO inputs with
// pull-ups (pressed = low, idle = high), and spare outputs drive debug
// signals. Edge callbacks let the firmware register interrupt-on-change
// handlers the way PORTB interrupts work on the PIC.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <vector>

namespace distscroll::hw {

enum class PinLevel : std::uint8_t { Low = 0, High = 1 };
enum class PinMode : std::uint8_t { Input, Output };

class Gpio {
 public:
  // ds-lint: allow(no-std-function-hot-path) wired once at board setup; fires per edge, not per sample
  using EdgeCallback = std::function<void(std::size_t pin, PinLevel level)>;

  explicit Gpio(std::size_t pin_count);

  /// Session reuse: all pins float back to the pull-up default. Modes
  /// and edge callbacks are wiring and survive (pin count is fixed at
  /// construction).
  void reset() {
    for (Pin& pin : pins_) pin.level = PinLevel::High;
  }

  [[nodiscard]] std::size_t pin_count() const { return pins_.size(); }

  void set_mode(std::size_t pin, PinMode mode);
  [[nodiscard]] PinMode mode(std::size_t pin) const;

  /// Firmware writes an output pin.
  void write(std::size_t pin, PinLevel level);

  /// Firmware reads a pin (inputs reflect the externally driven level;
  /// unconnected inputs read High via pull-up).
  [[nodiscard]] PinLevel read(std::size_t pin) const;

  /// External hardware (button model) drives an input pin. Fires the
  /// edge callback on change.
  void drive_external(std::size_t pin, PinLevel level);

  /// Register interrupt-on-change for a pin.
  void on_edge(std::size_t pin, EdgeCallback cb);

 private:
  struct Pin {
    PinMode mode = PinMode::Input;
    PinLevel level = PinLevel::High;  // pull-up default
    EdgeCallback on_edge;
  };
  std::vector<Pin> pins_;
};

}  // namespace distscroll::hw
