#include "hw/battery.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace distscroll::hw {

std::size_t Battery::add_consumer(std::string name, double draw_ma) {
  assert(draw_ma >= 0.0);
  consumers_.push_back({std::move(name), draw_ma});
  consumer_mah_.push_back(0.0);
  return consumers_.size() - 1;
}

void Battery::set_draw(std::size_t consumer, double draw_ma) {
  assert(consumer < consumers_.size() && draw_ma >= 0.0);
  consumers_[consumer].draw_ma = draw_ma;
}

double Battery::total_draw_ma() const {
  double total = 0.0;
  for (const auto& c : consumers_) total += c.draw_ma;
  return total;
}

void Battery::consume(util::Seconds dt) {
  assert(dt.value >= 0.0);
  const double hours = dt.value / 3600.0;
  for (std::size_t i = 0; i < consumers_.size(); ++i) {
    const double mah = consumers_[i].draw_ma * hours;
    consumer_mah_[i] += mah;
    consumed_mah_ += mah;
  }
}

util::Volts Battery::voltage() const {
  // Linear open-circuit discharge curve 9.0 V (full) -> 7.2 V (empty),
  // a reasonable approximation of an alkaline block over its usable
  // range, minus resistive sag at the present load.
  const double frac = remaining_fraction();
  const double open_circuit = config_.nominal_volts - (1.0 - frac) * 1.8;
  const double sag = config_.internal_ohms * total_draw_ma() / 1000.0;
  return util::Volts{std::max(0.0, open_circuit - sag)};
}

double Battery::remaining_fraction() const {
  if (config_.capacity_mah <= 0.0) return 0.0;
  return std::clamp(1.0 - consumed_mah_ / config_.capacity_mah, 0.0, 1.0);
}

bool Battery::depleted() const {
  return remaining_fraction() <= 0.0 || voltage().value < config_.cutoff_volts;
}

double Battery::estimated_runtime_hours() const {
  const double draw = total_draw_ma();
  if (draw <= 0.0) return std::numeric_limits<double>::infinity();
  return (config_.capacity_mah - consumed_mah_) / draw;
}

const std::string& Battery::consumer_name(std::size_t consumer) const {
  assert(consumer < consumers_.size());
  return consumers_[consumer].name;
}

}  // namespace distscroll::hw
