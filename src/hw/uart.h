// UART model.
//
// The Smart-Its base board exposes a serial connector (paper Fig. 3);
// the wireless module sits behind it. We model baud-limited byte
// transmission with a bounded TX queue and an RX FIFO, so telemetry
// bandwidth is a real constraint: at 115200 baud a state frame costs
// ~1 ms, which matters at a 38 Hz sensor rate.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "util/ring_buffer.h"
#include "util/units.h"

namespace distscroll::hw {

class Uart {
 public:
  struct Config {
    double baud = 115200.0;
    // 8N1: 10 bit times per byte.
    static constexpr double bits_per_byte = 10.0;
  };

  // ds-lint: allow(no-std-function-hot-path) wired once when the RF module is attached
  using TxCallback = std::function<void(std::uint8_t)>;
  /// Backpressure hook: fires after each byte leaves the TX FIFO, i.e.
  /// whenever transmit() space just opened up. Senders with their own
  /// queues (wireless::ArqSender) use it instead of polling tx_free().
  // ds-lint: allow(no-std-function-hot-path) wired once by the ARQ sender at link setup
  using TxSpaceCallback = std::function<void()>;

  Uart() : Uart(Config{}) {}
  explicit Uart(Config config) : config_(config) {}

  /// Session reuse: drain both FIFOs and zero the overflow counter. The
  /// TX-space callback is wiring and survives.
  void reset(Config config) {
    config_ = config;
    tx_fifo_.clear();
    rx_fifo_.clear();
    rx_overflows_ = 0;
  }

  [[nodiscard]] util::Seconds byte_time() const {
    return util::Seconds{Config::bits_per_byte / config_.baud};
  }

  /// Firmware queues a byte for transmission. Returns false when the TX
  /// FIFO is full (byte dropped — the firmware must pace itself).
  bool transmit(std::uint8_t byte) { return tx_fifo_.try_push(byte); }

  [[nodiscard]] std::size_t tx_pending() const { return tx_fifo_.size(); }
  [[nodiscard]] std::size_t tx_free() const { return tx_fifo_.capacity() - tx_fifo_.size(); }

  void set_tx_space_callback(TxSpaceCallback cb) { tx_space_cb_ = std::move(cb); }

  /// The wire side clocks out one byte if available; invoked by the
  /// board at byte_time() intervals.
  std::optional<std::uint8_t> clock_out() {
    auto byte = tx_fifo_.pop();
    if (byte && tx_space_cb_) tx_space_cb_();
    return byte;
  }

  /// The wire side delivers a received byte into the RX FIFO. Returns
  /// false on overflow (byte lost, counted).
  bool deliver(std::uint8_t byte) {
    if (rx_fifo_.try_push(byte)) return true;
    ++rx_overflows_;
    return false;
  }

  /// Firmware reads a received byte.
  std::optional<std::uint8_t> receive() { return rx_fifo_.pop(); }

  [[nodiscard]] std::size_t rx_available() const { return rx_fifo_.size(); }
  [[nodiscard]] std::uint64_t rx_overflows() const { return rx_overflows_; }

 private:
  Config config_;
  // The PIC 18F452 USART has a tiny hardware FIFO; firmware typically
  // adds a software ring in RAM. 64 bytes models base board firmware.
  util::RingBuffer<std::uint8_t, 64> tx_fifo_;
  util::RingBuffer<std::uint8_t, 64> rx_fifo_;
  TxSpaceCallback tx_space_cb_;
  std::uint64_t rx_overflows_ = 0;
};

}  // namespace distscroll::hw
