// I2C bus model.
//
// The two Barton BT96040 chip-on-glass displays hang off the Smart-Its
// I2C bus (paper Section 4.4). We model the master-side transaction API
// the firmware uses (write register/data bursts, reads), 7-bit
// addressing, NACK on missing slaves, and per-byte timing at the
// configured bus clock so display updates cost realistic time.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "util/units.h"

namespace distscroll::hw {

/// A device on the bus. Implementations: display::Bt96040.
class I2cSlave {
 public:
  virtual ~I2cSlave() = default;

  /// Master -> slave burst (after address byte). Return false to NACK.
  virtual bool on_write(std::span<const std::uint8_t> data) = 0;

  /// Slave -> master read of `length` bytes.
  virtual std::vector<std::uint8_t> on_read(std::size_t length) = 0;
};

class I2cBus {
 public:
  struct Config {
    double bus_hz = 100'000.0;  // standard mode
  };

  I2cBus() : I2cBus(Config{}) {}
  explicit I2cBus(Config config) : config_(config) {}

  /// Session reuse: zero the traffic counters; attached slaves are
  /// wiring and survive.
  void reset(Config config) {
    config_ = config;
    transactions_ = 0;
    bytes_ = 0;
  }

  /// Attach a slave at a 7-bit address. Replaces any previous slave at
  /// that address.
  void attach(std::uint8_t address, I2cSlave* slave);

  struct Result {
    bool acked = false;
    util::Seconds bus_time{0.0};  // time the transaction occupied the bus
    std::vector<std::uint8_t> data;  // for reads
  };

  /// Master write transaction: START, address+W, payload, STOP.
  Result write(std::uint8_t address, std::span<const std::uint8_t> payload);

  /// Master read transaction: START, address+R, `length` bytes, STOP.
  Result read(std::uint8_t address, std::size_t length);

  [[nodiscard]] std::uint64_t transactions() const { return transactions_; }
  [[nodiscard]] std::uint64_t bytes_transferred() const { return bytes_; }

 private:
  [[nodiscard]] util::Seconds byte_time(std::size_t bytes) const {
    // 9 clocks per byte (8 bits + ACK) plus ~2 clocks of START/STOP
    // overhead amortised into the transaction by the caller.
    return util::Seconds{9.0 * static_cast<double>(bytes) / config_.bus_hz};
  }

  Config config_;
  std::map<std::uint8_t, I2cSlave*> slaves_;
  std::uint64_t transactions_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace distscroll::hw
