// PIC 18F452-like microcontroller model.
//
// The paper stresses that DistScroll's input parameter "can be directly
// derived from the sensor without the need of heavy input processing"
// (Section 2) — a claim about MCU cycles. We model the budget side:
// a cycle counter at 10 MIPS (40 MHz Fosc / 4), flash (32 KiB) and RAM
// (1536 B) budgets that firmware structures register against, and
// periodic timer interrupts scheduled on the shared event queue.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sim/event_queue.h"
#include "util/units.h"

namespace distscroll::hw {

class Mcu {
 public:
  struct Config {
    double mips = 10.0;             // instruction throughput (40 MHz / 4)
    std::size_t flash_bytes = 32 * 1024;
    std::size_t ram_bytes = 1536;
  };

  Mcu(Config config, sim::EventQueue& queue) : config_(config), queue_(&queue) {}

  /// Session reuse: zero the cycle counter and drop all timers. The
  /// owner must clear the event queue first — pending timer events hold
  /// indices into timers_. Memory reservations are PRESERVED: the
  /// firmware image and its static tables are wired once per object
  /// (per board), not once per session.
  void reset(Config config) {
    config_ = config;
    cycles_ = 0;
    timers_.clear();
  }

  // --- cycle accounting -------------------------------------------------
  /// Firmware charges instruction cycles for work it performs; used by
  /// the "no heavy processing" micro-benchmark.
  void charge_cycles(std::uint64_t cycles) { cycles_ += cycles; }
  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }
  [[nodiscard]] util::Seconds cycles_as_time(std::uint64_t cycles) const {
    return util::Seconds{static_cast<double>(cycles) / (config_.mips * 1e6)};
  }

  // --- memory budgets ----------------------------------------------------
  /// Register a static RAM allocation (firmware tables, FIFOs). Asserts
  /// the budget is not exceeded — the 1.5 KiB constraint is real.
  void reserve_ram(std::string what, std::size_t bytes);
  void reserve_flash(std::string what, std::size_t bytes);
  [[nodiscard]] std::size_t ram_used() const { return ram_used_; }
  [[nodiscard]] std::size_t flash_used() const { return flash_used_; }
  [[nodiscard]] std::size_t ram_free() const { return config_.ram_bytes - ram_used_; }

  // --- timers -------------------------------------------------------------
  /// Start a periodic timer interrupt. The handler runs on the event
  /// queue every `period`. Returns a timer id; stop with stop_timer.
  // ds-lint: allow(no-std-function-hot-path) owning boundary: the timer outlives its registrant's frame
  std::size_t start_timer(util::Seconds period, std::function<void()> handler);
  void stop_timer(std::size_t timer);

  [[nodiscard]] sim::EventQueue& queue() { return *queue_; }
  [[nodiscard]] util::Seconds now() const { return queue_->now(); }

  /// Publish the MCU's budget state into a metrics registry.
  void export_metrics(obs::MetricsRegistry& registry, const char* prefix = "mcu") const {
    std::string p(prefix);
    registry.counter(p + "_cycles").set(cycles_);
    registry.gauge(p + "_ram_used_bytes").set(static_cast<double>(ram_used_));
    registry.gauge(p + "_flash_used_bytes").set(static_cast<double>(flash_used_));
  }

 private:
  void arm(std::size_t timer);

  Config config_;
  sim::EventQueue* queue_;
  std::uint64_t cycles_ = 0;
  std::size_t ram_used_ = 0;
  std::size_t flash_used_ = 0;
  struct Allocation {
    std::string what;
    std::size_t bytes;
  };
  std::vector<Allocation> ram_allocations_;
  std::vector<Allocation> flash_allocations_;
  struct Timer {
    util::Seconds period{0.0};
    // ds-lint: allow(no-std-function-hot-path) owning slot; per-tick dispatch is one erased call, no alloc
    std::function<void()> handler;
    bool active = false;
  };
  std::vector<Timer> timers_;
};

}  // namespace distscroll::hw
