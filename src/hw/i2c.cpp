#include "hw/i2c.h"

#include <cassert>

namespace distscroll::hw {

void I2cBus::attach(std::uint8_t address, I2cSlave* slave) {
  assert(address < 0x80 && slave != nullptr);
  slaves_[address] = slave;
}

I2cBus::Result I2cBus::write(std::uint8_t address, std::span<const std::uint8_t> payload) {
  ++transactions_;
  Result result;
  // Address byte always clocks out, acked or not.
  result.bus_time = byte_time(1 + payload.size());
  auto it = slaves_.find(address);
  if (it == slaves_.end()) {
    // NACK on the address byte: payload never clocks out.
    result.bus_time = byte_time(1);
    return result;
  }
  bytes_ += 1 + payload.size();
  result.acked = it->second->on_write(payload);
  return result;
}

I2cBus::Result I2cBus::read(std::uint8_t address, std::size_t length) {
  ++transactions_;
  Result result;
  auto it = slaves_.find(address);
  if (it == slaves_.end()) {
    result.bus_time = byte_time(1);
    return result;
  }
  result.data = it->second->on_read(length);
  result.acked = true;
  result.bus_time = byte_time(1 + result.data.size());
  bytes_ += 1 + result.data.size();
  return result;
}

}  // namespace distscroll::hw
