#include "hw/mcu.h"

namespace distscroll::hw {

void Mcu::reserve_ram(std::string what, std::size_t bytes) {
  assert(ram_used_ + bytes <= config_.ram_bytes && "PIC 18F452 RAM budget (1536 B) exceeded");
  ram_used_ += bytes;
  // ds-lint: allow(no-alloc-markers) budget ledger; call sites on warm paths are latched to fire once per part
  ram_allocations_.push_back({std::move(what), bytes});
}

void Mcu::reserve_flash(std::string what, std::size_t bytes) {
  assert(flash_used_ + bytes <= config_.flash_bytes && "PIC 18F452 flash budget (32 KiB) exceeded");
  flash_used_ += bytes;
  flash_allocations_.push_back({std::move(what), bytes});
}

std::size_t Mcu::start_timer(util::Seconds period, std::function<void()> handler) {
  assert(period.value > 0.0 && handler);
  timers_.push_back({period, std::move(handler), true});
  const std::size_t id = timers_.size() - 1;
  arm(id);
  return id;
}

void Mcu::stop_timer(std::size_t timer) {
  assert(timer < timers_.size());
  timers_[timer].active = false;
}

void Mcu::arm(std::size_t timer) {
  queue_->schedule_after(timers_[timer].period, [this, timer] {
    Timer& t = timers_[timer];
    if (!t.active) return;
    t.handler();
    if (t.active) arm(timer);
  });
}

}  // namespace distscroll::hw
