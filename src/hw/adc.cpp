#include "hw/adc.h"

#include <algorithm>
#include <cmath>

namespace distscroll::hw {

std::size_t Adc10::attach(AnalogSource source) {
  assert(source);
  channels_.push_back(std::move(source));
  return channels_.size() - 1;
}

util::AdcCounts Adc10::sample(std::size_t channel, util::Seconds now) {
  assert(channel < channels_.size());
  const util::Volts v = channels_[channel](now);
  double counts = v.value / config_.vref * 1023.0;
  counts += rng_.gaussian(0.0, config_.noise_lsb_stddev);
  counts = std::clamp(counts, 0.0, 1023.0);
  return util::AdcCounts{static_cast<std::uint16_t>(std::lround(counts))};
}

}  // namespace distscroll::hw
