// PIC 18F452 data EEPROM model (256 bytes).
//
// The real prototype must keep its per-unit sensor calibration across
// battery changes ("To allow an opening of the device for battery
// changes...", paper Section 4.1) — that is what the PIC's on-chip data
// EEPROM is for. Modelled: byte-addressed read/write, the PIC's slow
// (~4 ms) self-timed write, per-cell wear counting, and fault injection
// for corruption tests.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/random.h"
#include "util/units.h"

namespace distscroll::hw {

class Eeprom {
 public:
  static constexpr std::size_t kSize = 256;
  /// Self-timed write completes in ~4 ms on the PIC18.
  static constexpr util::Seconds kWriteTime{4e-3};

  Eeprom() { cells_.fill(0xFF); }  // erased state

  [[nodiscard]] std::uint8_t read(std::size_t address) const {
    assert(address < kSize);
    return cells_[address];
  }

  /// Write one byte; returns the time the firmware must wait.
  util::Seconds write(std::size_t address, std::uint8_t value) {
    assert(address < kSize);
    cells_[address] = value;
    ++wear_[address];
    ++writes_;
    return kWriteTime;
  }

  [[nodiscard]] std::vector<std::uint8_t> read_block(std::size_t address, std::size_t length) const {
    assert(address + length <= kSize);
    return {cells_.begin() + static_cast<long>(address),
            cells_.begin() + static_cast<long>(address + length)};
  }

  util::Seconds write_block(std::size_t address, std::span<const std::uint8_t> data) {
    util::Seconds total{0.0};
    for (std::size_t i = 0; i < data.size(); ++i) {
      total = total + write(address + i, data[i]);
    }
    return total;
  }

  [[nodiscard]] std::uint64_t total_writes() const { return writes_; }
  [[nodiscard]] std::uint32_t wear(std::size_t address) const {
    assert(address < kSize);
    return wear_[address];
  }

  /// Fault injection: flip `bits` random bits anywhere in the array
  /// (data retention loss / a write interrupted by battery removal).
  void corrupt(sim::Rng& rng, int bits) {
    for (int i = 0; i < bits; ++i) {
      const auto address = static_cast<std::size_t>(rng.uniform_int(0, kSize - 1));
      cells_[address] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    }
  }

  void erase() {
    cells_.fill(0xFF);
  }

  /// Session reuse: a factory-fresh part — erased cells, zero wear.
  /// erase() alone models an in-system bulk erase and keeps the wear
  /// history; this does not.
  void reset() {
    cells_.fill(0xFF);
    wear_.fill(0);
    writes_ = 0;
  }

 private:
  std::array<std::uint8_t, kSize> cells_{};
  std::array<std::uint32_t, kSize> wear_{};
  std::uint64_t writes_ = 0;
};

}  // namespace distscroll::hw
