// 10-bit successive-approximation ADC, as on the PIC 18F452.
//
// The paper's Fig. 4 caption reads "measured analog voltage at Smart-Its
// input port": the firmware never sees volts, it sees ADC counts. The
// model covers reference-relative quantisation, input clamping, optional
// LSB noise, and the acquisition+conversion time a real PIC pays
// (~12 Tad + acquisition, here lumped into a fixed conversion time).
#pragma once

#include <cassert>
#include <vector>

#include "sim/random.h"
#include "util/function_ref.h"
#include "util/units.h"

namespace distscroll::hw {

/// An analog signal the ADC can sample: volts as a function of simulated
/// time. Sensors expose themselves as AnalogSource.
///
/// A non-owning delegate, not a std::function: the ADC samples on every
/// firmware tick and the sources are long-lived board wiring (a device's
/// sensors, a test's local lambda), so the two-pointer view removes a
/// type-erased heap callable from the per-sample path. Callers keep the
/// callable alive for the ADC's lifetime.
using AnalogSource = util::FunctionRef<util::Volts(util::Seconds)>;

class Adc10 {
 public:
  struct Config {
    double vref = 5.0;                       // reference voltage
    util::Seconds conversion_time{44e-6};    // PIC18 typical @ Fosc/32
    double noise_lsb_stddev = 0.5;           // conversion noise in LSBs
  };

  Adc10(Config config, sim::Rng rng) : config_(config), rng_(rng) {}

  /// Session reuse: new config and noise stream; attached channels are
  /// wiring and survive.
  void reset(Config config, sim::Rng rng) {
    config_ = config;
    rng_ = rng;
  }

  /// Attach an analog source to a channel; returns the channel number.
  std::size_t attach(AnalogSource source);

  [[nodiscard]] std::size_t channel_count() const { return channels_.size(); }
  [[nodiscard]] util::Seconds conversion_time() const { return config_.conversion_time; }

  /// Sample `channel` at simulated time `now`. The caller (MCU) is
  /// responsible for accounting the conversion time.
  [[nodiscard]] util::AdcCounts sample(std::size_t channel, util::Seconds now);

  /// Convert a count back to volts (for host-side analysis/plots).
  [[nodiscard]] util::Volts to_volts(util::AdcCounts counts) const {
    return util::Volts{counts.value * config_.vref / 1023.0};
  }

 private:
  Config config_;
  sim::Rng rng_;
  std::vector<AnalogSource> channels_;
};

}  // namespace distscroll::hw
