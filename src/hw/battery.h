// 9 V block battery model.
//
// The prototype is powered by a 9 V block (paper Section 4). We model a
// simple coulomb counter with load-dependent voltage sag so the power
// budget of design alternatives (display brightness, sensor duty cycle)
// can be compared — one of the implicit engineering constraints the
// paper mentions when arguing for sensors over mechanical parts.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "util/units.h"

namespace distscroll::hw {

class Battery {
 public:
  struct Config {
    double nominal_volts = 9.0;
    double capacity_mah = 550.0;    // typical alkaline 9 V block
    double internal_ohms = 1.7;     // causes sag under load
    double cutoff_volts = 6.0;      // below this the regulator drops out
  };

  Battery() : Battery(Config{}) {}
  explicit Battery(Config config) : config_(config) {}

  /// Session reuse: a fresh cell of the (possibly new) configured
  /// chemistry. Registered consumers survive — they are wiring — but the
  /// owner must re-apply their draws via set_draw(), since the previous
  /// session may have duty-cycled them down.
  void reset(Config config) {
    config_ = config;
    consumed_mah_ = 0.0;
    std::fill(consumer_mah_.begin(), consumer_mah_.end(), 0.0);
  }

  /// Register a named consumer with a constant current draw in mA.
  /// Returns the consumer id.
  std::size_t add_consumer(std::string name, double draw_ma);

  /// Change a consumer's draw (e.g. display brightness via the
  /// potentiometer, sensor duty cycling).
  void set_draw(std::size_t consumer, double draw_ma);

  [[nodiscard]] double total_draw_ma() const;

  /// Advance battery state by dt at the current total draw.
  void consume(util::Seconds dt);

  /// Terminal voltage under the present load.
  [[nodiscard]] util::Volts voltage() const;

  [[nodiscard]] double consumed_mah() const { return consumed_mah_; }
  [[nodiscard]] double remaining_fraction() const;
  [[nodiscard]] bool depleted() const;

  /// Estimated runtime at the current draw, in hours.
  [[nodiscard]] double estimated_runtime_hours() const;

  /// Per-consumer energy share (mAh), index-aligned with add order.
  [[nodiscard]] const std::vector<double>& per_consumer_mah() const { return consumer_mah_; }
  [[nodiscard]] const std::string& consumer_name(std::size_t consumer) const;

 private:
  Config config_;
  struct Consumer {
    std::string name;
    double draw_ma;
  };
  std::vector<Consumer> consumers_;
  std::vector<double> consumer_mah_;
  double consumed_mah_ = 0.0;
};

}  // namespace distscroll::hw
