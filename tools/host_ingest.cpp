// host_ingest: drive the multi-device telemetry ingest pipeline from
// the command line — the operational face of host::run_host_ingest (the
// bench exp_host_ingest is the measured face).
//
// Usage:
//   host_ingest [--devices N] [--duration S] [--loss P] [--reorder P]
//               [--corrupt P] [--ack-loss P] [--lanes N]
//               [--lane-capacity N] [--batch N] [--threads N] [--seed S]
//               [--session N] [--out PATH.dstl] [--jsonl PATH.jsonl]
//
// Prints an ingest summary to stdout; --out writes the DSTL container,
// --jsonl the decoded accepted stream as JSON lines.
//
// Exit codes: 0 = clean ingest (no content mismatches), 1 = content
// mismatch detected or unwritable output, 64 = malformed command line.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "host/host_pipeline.h"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitFail = 1;
constexpr int kExitUsage = 64;

/// Strict uint64 parse: whole argument, no sign, no suffix.
bool parse_u64(const char* text, std::uint64_t& out) {
  if (text == nullptr || *text == '\0' || *text == '-') return false;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  out = static_cast<std::uint64_t>(value);
  return true;
}

/// Strict probability parse: [0, 1].
bool parse_prob(const char* text, double& out) {
  if (text == nullptr || *text == '\0') return false;
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0' || value < 0.0 || value > 1.0) return false;
  out = value;
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: host_ingest [--devices N] [--duration S] [--loss P] [--reorder P]\n"
               "                   [--corrupt P] [--ack-loss P] [--lanes N]\n"
               "                   [--lane-capacity N] [--batch N] [--threads N] [--seed S]\n"
               "                   [--session N] [--out PATH.dstl] [--jsonl PATH.jsonl]\n");
  return kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  using distscroll::host::HostIngestConfig;

  HostIngestConfig config;
  config.devices = 64;
  config.lanes = 8;
  std::string out_path;
  std::string jsonl_path;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next_u64 = [&](std::uint64_t& out) {
      return i + 1 < argc && parse_u64(argv[++i], out);
    };
    auto next_prob = [&](double& out) { return i + 1 < argc && parse_prob(argv[++i], out); };
    std::uint64_t value = 0;
    if (std::strcmp(arg, "--devices") == 0) {
      if (!next_u64(value) || value == 0 || value > 65535) return usage();
      config.devices = static_cast<std::size_t>(value);
    } else if (std::strcmp(arg, "--duration") == 0) {
      double seconds = 0.0;
      if (i + 1 >= argc) return usage();
      char* end = nullptr;
      seconds = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || seconds <= 0.0) return usage();
      config.duration_s = seconds;
    } else if (std::strcmp(arg, "--loss") == 0) {
      if (!next_prob(config.faults.frame_loss)) return usage();
    } else if (std::strcmp(arg, "--reorder") == 0) {
      if (!next_prob(config.faults.reorder)) return usage();
    } else if (std::strcmp(arg, "--corrupt") == 0) {
      if (!next_prob(config.faults.bit_flip)) return usage();
    } else if (std::strcmp(arg, "--ack-loss") == 0) {
      if (!next_prob(config.faults.ack_loss)) return usage();
    } else if (std::strcmp(arg, "--lanes") == 0) {
      if (!next_u64(value) || value == 0) return usage();
      config.lanes = static_cast<std::size_t>(value);
    } else if (std::strcmp(arg, "--lane-capacity") == 0) {
      if (!next_u64(value) || value == 0) return usage();
      config.lane_capacity = static_cast<std::size_t>(value);
    } else if (std::strcmp(arg, "--batch") == 0) {
      if (!next_u64(value) || value == 0) return usage();
      config.batch = static_cast<std::size_t>(value);
    } else if (std::strcmp(arg, "--threads") == 0) {
      if (!next_u64(value)) return usage();
      config.threads = static_cast<std::size_t>(value);
    } else if (std::strcmp(arg, "--seed") == 0) {
      if (!next_u64(config.base_seed)) return usage();
    } else if (std::strcmp(arg, "--session") == 0) {
      if (!next_u64(value) || value > 65535) return usage();
      config.session_id = static_cast<std::uint16_t>(value);
    } else if (std::strcmp(arg, "--out") == 0) {
      if (i + 1 >= argc) return usage();
      out_path = argv[++i];
    } else if (std::strcmp(arg, "--jsonl") == 0) {
      if (i + 1 >= argc) return usage();
      jsonl_path = argv[++i];
    } else {
      return usage();
    }
  }

  const auto result = distscroll::host::run_host_ingest(config);
  const auto& stats = result.stats;
  std::printf("devices            %zu (seen %" PRIu64 ")\n", config.devices, stats.devices_seen);
  std::printf("reports offered    %" PRIu64 "  (shed %" PRIu64 ")\n", stats.reports_offered,
              stats.reports_shed);
  std::printf("frames accepted    %" PRIu64 "  (reordered %" PRIu64 ", dup %" PRIu64
              ", too-old %" PRIu64 ")\n",
              stats.frames_accepted, stats.frames_reordered, stats.frames_duplicate,
              stats.frames_too_old);
  std::printf("crc rejected       %" PRIu64 "  (link: lost %" PRIu64 ", corrupted %" PRIu64
              ", reordered %" PRIu64 ")\n",
              stats.frames_crc_rejected, stats.link_frames_lost, stats.link_frames_corrupted,
              stats.link_frames_reordered);
  std::printf("arq tx             %" PRIu64 "  (retx %" PRIu64 ", retry-drops %" PRIu64
              ", stalls %" PRIu64 ")\n",
              stats.arq_transmissions, stats.arq_retransmissions,
              stats.arq_drops_retry_exhausted, stats.backpressure_stalls);
  std::printf("residual gaps      %" PRIu64 "\n", stats.sequence_gaps);
  std::printf("max queue depth    %zu\n", stats.max_queue_depth);
  std::printf("windows            %" PRIu64 "  (%s)\n", stats.windows,
              stats.complete ? "drained" : "grace exhausted");
  std::printf("content mismatches %" PRIu64 "\n", stats.content_mismatches);
  std::printf("dstl bytes         %zu  (%.2f bytes/record)\n", result.dstl.size(),
              result.records.empty()
                  ? 0.0
                  : static_cast<double>(result.dstl.size()) /
                        static_cast<double>(result.records.size()));

  if (stats.content_mismatches != 0) {
    std::fprintf(stderr, "host_ingest: accepted-frame content mismatch\n");
    return kExitFail;
  }
  if (!out_path.empty() && !distscroll::host::write_dstl_file(out_path, result.dstl)) {
    std::fprintf(stderr, "host_ingest: cannot write %s\n", out_path.c_str());
    return kExitFail;
  }
  if (!jsonl_path.empty() &&
      !distscroll::host::write_jsonl_file(jsonl_path, result.records)) {
    std::fprintf(stderr, "host_ingest: cannot write %s\n", jsonl_path.c_str());
    return kExitFail;
  }
  return kExitOk;
}
