// ds_lint — repo-specific determinism & architecture linter (CLI).
//
// The passes live in tools/lint/ (shared lexer + file index + rule
// registry; see DESIGN.md §14). This file only parses flags:
//
//   ds_lint [--root DIR] [PATH…]        lint the tree (or just PATH…)
//   ds_lint --rule NAME                 restrict output to one rule
//   ds_lint --format=text|json          finding output format
//   ds_lint --include-graph FILE        also dump the resolved #include
//                                       DAG (layer table + per-file
//                                       edges) as JSON; '-' = stdout
//   ds_lint --list-rules                registry with summaries
//
// Exit codes: 0 clean, 1 findings survived suppression, 64 usage or
// configuration error (EX_USAGE).
#include <cstdio>
#include <cstring>
#include <string>

#include "lint/driver.h"

namespace {

int usage(std::FILE* to) {
  std::fprintf(to,
               "usage: ds_lint [--root <dir>] [--rule <name>] [--format=text|json]\n"
               "               [--include-graph <file>] [--list-rules] [paths...]\n"
               "\n"
               "With no paths: walks src/ tools/ bench/ tests/ under --root (default: cwd),\n"
               "skipping tests/lint_fixtures/. Paths may be files or directories.\n");
  return lint::kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  lint::Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      options.root = argv[++i];
    } else if (arg == "--rule" && i + 1 < argc) {
      options.only_rule = argv[++i];
    } else if (arg == "--include-graph" && i + 1 < argc) {
      options.include_graph_path = argv[++i];
    } else if (arg.rfind("--format=", 0) == 0) {
      const std::string format = arg.substr(std::strlen("--format="));
      if (format == "json") {
        options.json = true;
      } else if (format != "text") {
        std::fprintf(stderr, "ds_lint: unknown format '%s'\n", format.c_str());
        return usage(stderr);
      }
    } else if (arg == "--list-rules") {
      lint::list_rules();
      return lint::kExitClean;
    } else if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return lint::kExitClean;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(stderr);
    } else {
      options.paths.emplace_back(arg);
    }
  }
  return lint::run(options);
}
