// ds_lint: project-specific static analyzer for the determinism contract.
//
// The repo's core guarantees — bit-identical sweeps at any thread count,
// byte-exact golden traces, an allocation-free steady-state session
// kernel — are behavioural properties that one stray wall-clock read,
// ambient RNG call, unordered-container iteration, or hot-path heap
// allocation silently breaks. The dynamic tests only catch a violation
// when it happens to land on an exercised path; ds_lint makes the rules
// machine-checked at the source level on every build, the way a kernel
// lint gates banned constructs out of a training stack.
//
// Deliberately dependency-free (no libclang): a comment/string-stripping
// lexer plus token-boundary scans over the stripped text. That level of
// analysis is exactly right for these rules — every banned construct has
// a lexically recognisable spelling — and keeps the tool a single TU
// that builds in milliseconds and runs over the whole tree faster than a
// compiler would parse one header.
//
// Diagnostics: `file:line: rule: message`, one per finding, sorted by
// (file, line). Exit status 1 when any finding survives suppression.
//
// Suppressions, narrowest first:
//   * `// ds-lint: allow(<rule>[, <rule>...])` on the offending line or
//     the line directly above it (the justification comment). This is
//     the sanctioned escape hatch and should carry a one-line reason.
//   * per-rule file-scope allowlists in the registry below — for whole
//     directories whose job is the banned construct (obs/ owns wall
//     timing, sim/random.h owns the RNG engine, tools/ are host-side).
//
// The fixture suite under tests/lint_fixtures/ pins the exact
// diagnostics (file:line:rule) each rule emits, including suppression
// and allowlist behaviour; the tree walk deliberately skips that
// directory.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

// --------------------------------------------------------------------------
// Source model: a file split into lines, with a parallel "code view" in
// which comments, string literals and char literals are blanked out
// (replaced by spaces) so rules never fire on prose or quoted text.
// Suppression comments are harvested while stripping.
struct SourceFile {
  std::string path;        // repo-relative, '/'-separated
  std::vector<std::string> raw;    // original lines
  std::vector<std::string> code;   // comment/string-stripped lines
  // allow[i] = rules suppressed for findings on line i+1 (from a
  // ds-lint comment on that line or the line above).
  std::vector<std::set<std::string>> allow;
};

struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;

  bool operator<(const Finding& other) const {
    if (file != other.file) return file < other.file;
    if (line != other.line) return line < other.line;
    return rule < other.rule;
  }
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Parse `ds-lint: allow(rule-a, rule-b)` out of a comment's text and
/// insert the rule names into `out`.
void harvest_allow(const std::string& comment, std::set<std::string>& out) {
  const std::string key = "ds-lint:";
  std::size_t at = comment.find(key);
  while (at != std::string::npos) {
    std::size_t p = at + key.size();
    while (p < comment.size() && comment[p] == ' ') ++p;
    if (comment.compare(p, 6, "allow(") == 0) {
      p += 6;
      const std::size_t close = comment.find(')', p);
      if (close != std::string::npos) {
        std::string name;
        for (std::size_t i = p; i <= close; ++i) {
          const char c = comment[i];
          if (c == ',' || c == ')') {
            if (!name.empty()) out.insert(name);
            name.clear();
          } else if (c != ' ') {
            name.push_back(c);
          }
        }
      }
    }
    at = comment.find(key, at + key.size());
  }
}

/// Strip comments and string/char literals, preserving line structure.
/// Tracks ds-lint suppression comments per line.
SourceFile load_source(const fs::path& abspath, std::string rel) {
  SourceFile src;
  src.path = std::move(rel);
  std::ifstream in(abspath);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    src.raw.push_back(line);
  }
  src.code.resize(src.raw.size());
  src.allow.resize(src.raw.size());

  enum class Mode { Code, Block, Str, Chr, RawStr };
  Mode mode = Mode::Code;
  std::string raw_delim;                       // raw-string closing delimiter
  std::vector<std::string> comment_on(src.raw.size());  // comment text per line

  for (std::size_t li = 0; li < src.raw.size(); ++li) {
    const std::string& s = src.raw[li];
    std::string& out = src.code[li];
    out.assign(s.size(), ' ');
    for (std::size_t i = 0; i < s.size(); ++i) {
      const char c = s[i];
      switch (mode) {
        case Mode::Code:
          if (c == '/' && i + 1 < s.size() && s[i + 1] == '/') {
            comment_on[li] += s.substr(i + 2);
            i = s.size();  // rest of line is comment
          } else if (c == '/' && i + 1 < s.size() && s[i + 1] == '*') {
            mode = Mode::Block;
            ++i;
          } else if (c == '"') {
            // R"delim( ... )delim" raw strings
            if (i >= 1 && s[i - 1] == 'R' && (i < 2 || !ident_char(s[i - 2]))) {
              const std::size_t open = s.find('(', i + 1);
              if (open != std::string::npos) {
                raw_delim = ")" + s.substr(i + 1, open - i - 1) + "\"";
                out[i] = '"';
                i = open;
                mode = Mode::RawStr;
                break;
              }
            }
            out[i] = '"';
            mode = Mode::Str;
          } else if (c == '\'' && !(i > 0 && ident_char(s[i - 1]))) {
            // char literal (not a digit separator like 10'000)
            out[i] = '\'';
            mode = Mode::Chr;
          } else {
            out[i] = c;
          }
          break;
        case Mode::Block: {
          const std::size_t close = s.find("*/", i);
          if (close == std::string::npos) {
            comment_on[li] += s.substr(i);
            i = s.size();
          } else {
            comment_on[li] += s.substr(i, close - i);
            i = close + 1;
            mode = Mode::Code;
          }
          break;
        }
        case Mode::Str:
          if (c == '\\') {
            ++i;
          } else if (c == '"') {
            out[i] = '"';
            mode = Mode::Code;
          }
          break;
        case Mode::Chr:
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            out[i] = '\'';
            mode = Mode::Code;
          }
          break;
        case Mode::RawStr: {
          const std::size_t close = s.find(raw_delim, i);
          if (close == std::string::npos) {
            i = s.size();
          } else {
            i = close + raw_delim.size() - 1;
            out[i] = '"';
            mode = Mode::Code;
          }
          break;
        }
      }
    }
  }

  // A suppression covers its own line and the line below (comment-above
  // style). Harvest after the full pass so block comments work too.
  for (std::size_t li = 0; li < comment_on.size(); ++li) {
    if (comment_on[li].empty()) continue;
    std::set<std::string> rules;
    harvest_allow(comment_on[li], rules);
    if (rules.empty()) continue;
    src.allow[li].insert(rules.begin(), rules.end());
    if (li + 1 < src.allow.size()) src.allow[li + 1].insert(rules.begin(), rules.end());
  }
  return src;
}

// --------------------------------------------------------------------------
// Token scanning helpers over the stripped code view.

/// Find `token` in `line` starting at `from`, requiring identifier
/// boundaries on both sides. Returns npos when absent.
std::size_t find_token(const std::string& line, const std::string& token,
                       std::size_t from = 0) {
  std::size_t at = line.find(token, from);
  while (at != std::string::npos) {
    const bool left_ok = at == 0 || !ident_char(line[at - 1]);
    const std::size_t end = at + token.size();
    const bool right_ok = end >= line.size() || !ident_char(line[end]);
    if (left_ok && right_ok) return at;
    at = line.find(token, at + 1);
  }
  return std::string::npos;
}

bool has_token(const std::string& line, const std::string& token) {
  return find_token(line, token) != std::string::npos;
}

/// Position just past an optional balanced template argument list
/// starting at `at` (so `make_unique<int[]>` scans to its '(').
std::size_t skip_template_args(const std::string& line, std::size_t at) {
  if (at >= line.size() || line[at] != '<') return at;
  int depth = 0;
  for (; at < line.size(); ++at) {
    if (line[at] == '<') ++depth;
    if (line[at] == '>' && --depth == 0) return at + 1;
  }
  return line.size();
}

/// Last non-space character before position `at`, or '\0'.
char prev_sig_char(const std::string& line, std::size_t at) {
  while (at > 0) {
    --at;
    if (line[at] != ' ' && line[at] != '\t') return line[at];
  }
  return '\0';
}

/// True when the identifier ending just before `at` (skipping spaces)
/// equals `word` — e.g. to detect `std` before `::`.
bool prev_word_is(const std::string& line, std::size_t at, const std::string& word) {
  while (at > 0 && (line[at - 1] == ' ' || line[at - 1] == '\t')) --at;
  if (at < word.size()) return false;
  if (line.compare(at - word.size(), word.size(), word) != 0) return false;
  const std::size_t start = at - word.size();
  return start == 0 || !ident_char(line[start - 1]);
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool is_header(const std::string& path) {
  return path.size() > 2 && path.compare(path.size() - 2, 2, ".h") == 0;
}

// --------------------------------------------------------------------------
// Rule registry. Each rule: name, per-file applicability (scope +
// allowlist), and a scan over the stripped source.

using Emit = std::vector<Finding>;

void emit(Emit& out, const SourceFile& src, std::size_t line_index,
          const std::string& rule, std::string message) {
  if (src.allow[line_index].count(rule) != 0) return;
  out.push_back(Finding{src.path, line_index + 1, rule, std::move(message)});
}

// --- no-wallclock ---------------------------------------------------------
// Simulated time comes from sim::EventQueue; host wall time is reserved
// for the obs/ stage profiler and the sweep harness's wall metric (both
// explicitly outside the deterministic state). Anything else reading
// the machine clock makes behaviour depend on the host.
bool wallclock_applies(const std::string& path) {
  if (starts_with(path, "src/obs/")) return false;  // owns wall timing
  if (starts_with(path, "tools/")) return false;    // host-side CLIs
  return true;
}

void rule_no_wallclock(const SourceFile& src, Emit& out) {
  static const std::vector<std::string> kBanned = {
      "system_clock",  "steady_clock",  "high_resolution_clock",
      "gettimeofday",  "clock_gettime", "timespec_get",
      // Host resource probes (peak RSS etc.) are observability, not sim
      // state — like wall timing they live behind allowlisted accessors.
      "getrusage",
  };
  for (std::size_t li = 0; li < src.code.size(); ++li) {
    const std::string& line = src.code[li];
    for (const auto& token : kBanned) {
      if (has_token(line, token)) {
        emit(out, src, li, "no-wallclock",
             "'" + token + "' reads the host clock; simulated time comes from sim::EventQueue");
      }
    }
    // Bare C `time(` / `clock(` calls: flag only expression-position
    // uses. Member access (`q.clock()`), qualified statics and
    // declarations (`const SimClock& clock() const`) are fine.
    for (const char* fn : {"time", "clock"}) {
      std::size_t at = find_token(line, fn);
      while (at != std::string::npos) {
        const std::size_t after = at + std::string(fn).size();
        if (after < line.size() && line[after] == '(') {
          const char prev = prev_sig_char(line, at);
          const bool member = prev == '.' ||
                              (prev == '>' && at >= 2 && line[at - 2] == '-');
          const bool qualified = prev == ':';
          const bool call_position = prev == '\0' || prev == ';' || prev == '{' ||
                                     prev == '}' || prev == '(' || prev == ',' ||
                                     prev == '=';
          const bool std_qualified =
              qualified && at >= 2 && prev_word_is(line, at - 2, "std");
          if ((call_position && !member) || std_qualified) {
            emit(out, src, li, "no-wallclock",
                 std::string("'") + fn + "()' reads the host clock; use the simulated clock");
          }
        }
        at = find_token(line, fn, at + 1);
      }
    }
  }
}

// --- no-ambient-rng -------------------------------------------------------
// All randomness flows through sim::Rng (seeded, forkable, recorded in
// BENCH json). Ambient engines make runs unrepeatable.
bool rng_applies(const std::string& path) {
  return path != "src/sim/random.h";  // the sanctioned engine lives here
}

void rule_no_ambient_rng(const SourceFile& src, Emit& out) {
  static const std::vector<std::string> kBannedTypes = {
      "random_device", "mt19937", "mt19937_64", "minstd_rand", "default_random_engine",
  };
  static const std::vector<std::string> kBannedCalls = {"rand", "srand", "drand48"};
  for (std::size_t li = 0; li < src.code.size(); ++li) {
    const std::string& line = src.code[li];
    for (const auto& token : kBannedTypes) {
      if (has_token(line, token)) {
        emit(out, src, li, "no-ambient-rng",
             "'" + token + "' is ambient randomness; seed a sim::Rng (or fork an existing one)");
      }
    }
    for (const auto& fn : kBannedCalls) {
      std::size_t at = find_token(line, fn);
      while (at != std::string::npos) {
        const std::size_t after = at + fn.size();
        if (after < line.size() && line[after] == '(') {
          const char prev = prev_sig_char(line, at);
          const bool member = prev == '.' ||
                              (prev == '>' && at >= 2 && line[at - 2] == '-');
          if (!member) {
            emit(out, src, li, "no-ambient-rng",
                 "'" + fn + "()' is ambient randomness; use sim::Rng");
          }
        }
        at = find_token(line, fn, at + 1);
      }
    }
  }
}

// --- no-unordered-iteration ----------------------------------------------
// Iterating an unordered container visits elements in hash order, which
// varies across libstdc++ versions and salt — any simulation state or
// output derived from that order breaks bit-identical replays. Keyed
// lookups are fine; iteration in deterministic subsystems is not.
bool unordered_applies(const std::string& path) {
  static const std::vector<std::string> kScopes = {
      "src/sim/", "src/study/", "src/core/", "src/sensors/", "src/hw/", "src/wireless/",
      "src/host/",
  };
  return std::any_of(kScopes.begin(), kScopes.end(),
                     [&](const std::string& s) { return starts_with(path, s); });
}

void rule_no_unordered_iteration(const SourceFile& src, Emit& out) {
  // Pass 1: names declared with an unordered container type.
  std::set<std::string> unordered_vars;
  for (const std::string& line : src.code) {
    for (const char* type : {"unordered_map", "unordered_set", "unordered_multimap",
                             "unordered_multiset"}) {
      std::size_t at = find_token(line, type);
      while (at != std::string::npos) {
        // Skip the template argument list (balanced <>), then read the
        // declared identifier, if the declaration fits on this line.
        std::size_t p = at + std::string(type).size();
        if (p < line.size() && line[p] == '<') {
          int depth = 0;
          for (; p < line.size(); ++p) {
            if (line[p] == '<') ++depth;
            if (line[p] == '>' && --depth == 0) {
              ++p;
              break;
            }
          }
        }
        while (p < line.size() && (line[p] == ' ' || line[p] == '&')) ++p;
        std::string name;
        while (p < line.size() && ident_char(line[p])) name.push_back(line[p++]);
        if (!name.empty()) unordered_vars.insert(name);
        at = find_token(line, type, at + 1);
      }
    }
  }
  if (unordered_vars.empty()) return;

  // Pass 2: range-for over, or begin()/iterator walks of, those names.
  for (std::size_t li = 0; li < src.code.size(); ++li) {
    const std::string& line = src.code[li];
    const std::size_t for_at = find_token(line, "for");
    const std::size_t colon = line.find(':');
    for (const auto& name : unordered_vars) {
      const std::size_t name_at = find_token(line, name);
      if (name_at == std::string::npos) continue;
      const bool range_for = for_at != std::string::npos && colon != std::string::npos &&
                             for_at < colon && name_at > colon;
      bool begin_walk = false;
      for (const char* fn : {".begin", ".cbegin", "->begin", "->cbegin"}) {
        if (line.find(name + fn, 0) != std::string::npos) begin_walk = true;
      }
      if (range_for || begin_walk) {
        emit(out, src, li, "no-unordered-iteration",
             "iterating unordered container '" + name +
                 "' visits hash order; use a sorted container or sort the keys first");
      }
    }
  }
}

// --- no-std-function-hot-path --------------------------------------------
// std::function in a device-side header means a type-erased, possibly
// heap-backed callable on a per-sample path. util::FunctionRef is the
// sanctioned delegate; owning std::function belongs at setup-time
// boundaries only, each use justified with an allow().
bool stdfunction_applies(const std::string& path) {
  if (!is_header(path)) return false;
  static const std::vector<std::string> kScopes = {
      "src/hw/", "src/core/", "src/sensors/", "src/display/",
  };
  return std::any_of(kScopes.begin(), kScopes.end(),
                     [&](const std::string& s) { return starts_with(path, s); });
}

void rule_no_std_function(const SourceFile& src, Emit& out) {
  for (std::size_t li = 0; li < src.code.size(); ++li) {
    if (src.code[li].find("std::function") != std::string::npos) {
      emit(out, src, li, "no-std-function-hot-path",
           "std::function in a device-side header; use util::FunctionRef on sampling paths "
           "(allow() only for setup-time owners)");
    }
  }
}

// --- no-alloc-markers -----------------------------------------------------
// Regions bracketed DS_HOT_BEGIN/DS_HOT_END declare "steady-state
// allocation-free" (the claim util::AllocGuard pins at runtime). Flag
// lexical allocation markers inside them; amortised-growth lines that
// are provably warm-path-free carry an allow() with the reason.
void rule_no_alloc_markers(const SourceFile& src, Emit& out) {
  static const std::vector<std::string> kCalls = {
      "make_unique", "make_shared", "malloc", "calloc", "realloc", "strdup",
  };
  static const std::vector<std::string> kGrowth = {
      "push_back", "emplace_back", "emplace", "insert", "resize", "reserve", "append",
  };
  bool hot = false;
  for (std::size_t li = 0; li < src.code.size(); ++li) {
    const std::string& line = src.code[li];
    // Preprocessor lines never open/close regions or allocate — the
    // marker macros' own `#define DS_HOT_BEGIN` must not start one.
    const std::size_t first = line.find_first_not_of(" \t");
    if (first != std::string::npos && line[first] == '#') continue;
    if (has_token(line, "DS_HOT_BEGIN")) {
      if (hot) {
        emit(out, src, li, "no-alloc-markers", "nested DS_HOT_BEGIN (missing DS_HOT_END?)");
      }
      hot = true;
      continue;
    }
    if (has_token(line, "DS_HOT_END")) {
      if (!hot) {
        emit(out, src, li, "no-alloc-markers", "DS_HOT_END without DS_HOT_BEGIN");
      }
      hot = false;
      continue;
    }
    if (!hot) continue;

    std::size_t at = find_token(line, "new");
    if (at != std::string::npos && !prev_word_is(line, at, "operator")) {
      emit(out, src, li, "no-alloc-markers", "'new' inside a DS_HOT region");
    }
    for (const auto& fn : kCalls) {
      const std::size_t call = find_token(line, fn);
      if (call != std::string::npos) {
        const std::size_t paren = skip_template_args(line, call + fn.size());
        if (paren < line.size() && line[paren] == '(') {
          emit(out, src, li, "no-alloc-markers", "'" + fn + "' inside a DS_HOT region");
        }
      }
    }
    for (const auto& fn : kGrowth) {
      std::size_t call = find_token(line, fn);
      while (call != std::string::npos) {
        const char prev = prev_sig_char(line, call);
        const bool member = prev == '.' || (prev == '>' && call >= 2 && line[call - 2] == '-');
        const std::size_t paren = skip_template_args(line, call + fn.size());
        if (member && paren < line.size() && line[paren] == '(') {
          emit(out, src, li, "no-alloc-markers",
               "container growth '" + fn + "' inside a DS_HOT region");
          break;
        }
        call = find_token(line, fn, call + 1);
      }
    }
  }
  if (hot) {
    emit(out, src, src.code.size() - 1, "no-alloc-markers",
         "DS_HOT_BEGIN region not closed by end of file");
  }
}

// --- include-hygiene ------------------------------------------------------
// Headers must not drag in stream globals (<iostream> instantiates
// std::cout's init guard into every TU) and includes are root-relative
// (no "../" escapes — they break the single -I src include model).
void rule_include_hygiene(const SourceFile& src, Emit& out) {
  for (std::size_t li = 0; li < src.code.size(); ++li) {
    const std::string& code = src.code[li];
    const std::size_t hash = code.find_first_not_of(" \t");
    if (hash == std::string::npos || code[hash] != '#') continue;
    if (code.find("include", hash) == std::string::npos) continue;
    const std::string& raw = src.raw[li];  // the path lives in a "string"
    if (is_header(src.path) && raw.find("<iostream>") != std::string::npos) {
      emit(out, src, li, "include-hygiene",
           "<iostream> in a header drags stream init into every TU; include it in the .cpp");
    }
    if (raw.find("\"../") != std::string::npos) {
      emit(out, src, li, "include-hygiene",
           "parent-relative include; use a root-relative path (-I src)");
    }
  }
}

// --- pragma-once ----------------------------------------------------------
void rule_pragma_once(const SourceFile& src, Emit& out) {
  if (!is_header(src.path)) return;
  for (const std::string& line : src.code) {
    if (line.find("#pragma once") != std::string::npos) return;
  }
  if (!src.code.empty()) {
    emit(out, src, 0, "pragma-once", "header is missing '#pragma once'");
  }
}

// --- registry -------------------------------------------------------------
struct Rule {
  const char* name;
  bool (*applies)(const std::string& path);
  void (*scan)(const SourceFile& src, Emit& out);
  const char* summary;
};

bool always(const std::string&) { return true; }

const std::vector<Rule>& registry() {
  static const std::vector<Rule> kRules = {
      {"no-wallclock", wallclock_applies, rule_no_wallclock,
       "host clock reads outside obs/ wall-timing and tools/"},
      {"no-ambient-rng", rng_applies, rule_no_ambient_rng,
       "randomness not flowing through sim::Rng"},
      {"no-unordered-iteration", unordered_applies, rule_no_unordered_iteration,
       "hash-order iteration in deterministic subsystems"},
      {"no-std-function-hot-path", stdfunction_applies, rule_no_std_function,
       "std::function in device-side headers (util::FunctionRef is the delegate)"},
      {"no-alloc-markers", always, rule_no_alloc_markers,
       "allocation markers inside DS_HOT_BEGIN/DS_HOT_END regions"},
      {"include-hygiene", always, rule_include_hygiene,
       "<iostream> in headers; parent-relative includes"},
      {"pragma-once", always, rule_pragma_once, "headers must use #pragma once"},
  };
  return kRules;
}

// --------------------------------------------------------------------------
bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

/// Repo-relative, '/'-separated form of `p` under `root`.
std::string rel_path(const fs::path& root, const fs::path& p) {
  return fs::relative(p, root).generic_string();
}

void lint_file(const fs::path& root, const fs::path& file, const std::string& only_rule,
               Emit& findings) {
  const SourceFile src = load_source(file, rel_path(root, file));
  for (const Rule& rule : registry()) {
    if (!only_rule.empty() && only_rule != rule.name) continue;
    if (!rule.applies(src.path)) continue;
    rule.scan(src, findings);
  }
}

int usage() {
  std::fprintf(stderr,
               "usage: ds_lint [--root <dir>] [--rule <name>] [--list-rules] [paths...]\n"
               "\n"
               "With no paths: walks src/ tools/ bench/ tests/ under --root (default: cwd),\n"
               "skipping tests/lint_fixtures/. Paths may be files or directories.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string only_rule;
  std::vector<fs::path> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--rule" && i + 1 < argc) {
      only_rule = argv[++i];
    } else if (arg == "--list-rules") {
      for (const Rule& rule : registry()) {
        std::printf("%-26s %s\n", rule.name, rule.summary);
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      paths.emplace_back(arg);
    }
  }
  root = fs::absolute(root);

  Emit findings;
  std::size_t files_scanned = 0;

  if (paths.empty()) {
    for (const char* top : {"src", "tools", "bench", "tests"}) {
      const fs::path dir = root / top;
      if (!fs::exists(dir)) continue;
      for (auto it = fs::recursive_directory_iterator(dir);
           it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_directory()) {
          const std::string name = it->path().filename().string();
          // Fixtures violate on purpose; build trees aren't ours.
          if (name == "lint_fixtures" || starts_with(name, "build")) {
            it.disable_recursion_pending();
          }
          continue;
        }
        if (!lintable(it->path())) continue;
        lint_file(root, it->path(), only_rule, findings);
        ++files_scanned;
      }
    }
  } else {
    for (const fs::path& p : paths) {
      const fs::path abs = fs::absolute(p);
      if (fs::is_directory(abs)) {
        for (auto it = fs::recursive_directory_iterator(abs);
             it != fs::recursive_directory_iterator(); ++it) {
          if (it->is_directory()) {
            const std::string name = it->path().filename().string();
            // Same skips as the default walk: fixtures violate on
            // purpose; build trees aren't ours.
            if (name == "lint_fixtures" || starts_with(name, "build")) {
              it.disable_recursion_pending();
            }
            continue;
          }
          if (!lintable(it->path())) continue;
          lint_file(root, it->path(), only_rule, findings);
          ++files_scanned;
        }
      } else if (fs::exists(abs)) {
        lint_file(root, abs, only_rule, findings);
        ++files_scanned;
      } else {
        std::fprintf(stderr, "ds_lint: no such file: %s\n", p.string().c_str());
        return 2;
      }
    }
  }

  std::sort(findings.begin(), findings.end());
  for (const Finding& f : findings) {
    std::printf("%s:%zu: %s: %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "ds_lint: %zu finding(s) in %zu file(s) scanned\n", findings.size(),
                 files_scanned);
    return 1;
  }
  return 0;
}
