// trace_replay: record, replay, verify and dump DistScroll traces.
//
//   trace_replay record <out.trace> [out.jsonl]
//       Run the canonical scripted phone-menu session and write the
//       binary trace (plus an optional JSONL rendering). This is how
//       tests/golden/canonical_phone_menu.trace is (re)generated.
//
//   trace_replay verify <in.trace>
//       Re-drive a fresh device from the recorded input streams and
//       byte-compare the resulting trace against the file. Exit 0 on a
//       byte-identical replay, 1 with a divergence diagnosis otherwise.
//
//   trace_replay dump <in.trace>
//       Print the trace as JSONL on stdout.
#include <cstdio>
#include <iostream>
#include <string>

#include "obs/replay.h"
#include "obs/trace_io.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: trace_replay record <out.trace> [out.jsonl]\n"
               "       trace_replay verify <in.trace>\n"
               "       trace_replay dump <in.trace>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace distscroll;
  if (argc < 3) return usage();
  const std::string mode = argv[1];
  const std::string path = argv[2];

  if (mode == "record") {
    const obs::Trace trace = obs::record_canonical_session();
    if (!obs::write_trace(path, trace)) {
      std::fprintf(stderr, "trace_replay: cannot write %s\n", path.c_str());
      return 1;
    }
    if (argc > 3 && !obs::write_jsonl_file(argv[3], trace)) {
      std::fprintf(stderr, "trace_replay: cannot write %s\n", argv[3]);
      return 1;
    }
    std::printf("recorded session %u: %zu events (%llu dropped) -> %s\n", trace.session_id,
                trace.events.size(), static_cast<unsigned long long>(trace.dropped),
                path.c_str());
    return 0;
  }

  const auto trace = obs::read_trace(path);
  if (!trace) {
    std::fprintf(stderr, "trace_replay: cannot read %s (missing or not a trace)\n",
                 path.c_str());
    return 1;
  }

  if (mode == "verify") {
    const obs::Trace replayed = obs::replay_device_trace(*trace);
    const obs::CompareResult compared = obs::compare_traces(*trace, replayed);
    if (!compared.match) {
      std::fprintf(stderr, "trace_replay: REPLAY DIVERGED: %s\n", compared.detail.c_str());
      return 1;
    }
    std::printf("replay OK: %zu events reproduced byte-for-byte\n", trace->events.size());
    return 0;
  }

  if (mode == "dump") {
    obs::write_jsonl(std::cout, *trace);
    return 0;
  }

  return usage();
}
