// Concurrency purity: the fleet engine shards sessions across
// util::ThreadPool workers, so everything those workers execute —
// src/study/, src/host/, and the sim kernel they drive (src/sim/) —
// must not touch mutable process-wide state. A namespace-scope counter
// that is harmless single-threaded becomes a data race (and a
// determinism leak: interleaving-dependent values) the moment two
// shards run concurrently.
//
// Two scans, both lexical:
//
//   1. namespace-scope statements: a brace-context walk classifies each
//      '{' as Namespace / Class / Initializer / Body; any ';'-terminated
//      statement at namespace depth that declares non-const,
//      non-thread_local, non-atomic, non-synchronisation state is
//      flagged.
//   2. function-local `static` declarations inside indexed definition
//      bodies (a `static` local is namespace-scope state with scoped
//      spelling).
//
// Envelope (documented in DESIGN.md §14): statements containing '(' are
// skipped — that silences function declarations and constructor-call
// initialisers at the cost of missing `static int x = f();`-style
// state; class-scope `static inline` members are likewise out of scope
// here. Const-qualified, thread_local, std::atomic, and mutex-family
// declarations are sanctioned by construction.
#include <algorithm>
#include <set>
#include <string>

#include "lint/rules.h"

namespace lint {
namespace {

bool concurrency_applies(const std::string& path) {
  return starts_with(path, "src/study/") || starts_with(path, "src/host/") ||
         starts_with(path, "src/sim/");
}

/// Identifiers whose presence sanctions (or disqualifies) a statement.
bool statement_is_exempt(const SourceFile& src, std::size_t begin, std::size_t end) {
  static const std::set<std::string, std::less<>> kExempt = {
      "const", "constexpr", "constinit", "thread_local",
      // synchronisation primitives are shared-by-design
      "mutex", "shared_mutex", "recursive_mutex", "timed_mutex",
      "condition_variable", "condition_variable_any", "once_flag",
      // not object declarations at all
      "using", "typedef", "template", "friend", "static_assert", "extern",
      "operator", "class", "struct", "union", "enum", "namespace", "requires",
      "concept",
  };
  std::size_t idents = 0;
  for (std::size_t i = begin; i < end; ++i) {
    if (src.is_punct(i, "(")) return true;  // fn decl / ctor-call init: out of scope
    if (src.tokens[i].kind != Token::Kind::Ident) continue;
    ++idents;
    const std::string_view text = src.text(src.tokens[i]);
    if (kExempt.count(text) != 0) return true;
    if (starts_with(std::string(text), "atomic")) return true;  // atomic<T>, atomic_int…
  }
  // A declaration needs at least a type and a name; a lone identifier
  // (macro residue, label) is not state.
  return idents < 2;
}

/// The declared name: the identifier just before the first '=', '{' or
/// '[' — or the last identifier in the statement.
std::string declared_name(const SourceFile& src, std::size_t begin, std::size_t end) {
  std::size_t stop = end;
  for (std::size_t i = begin; i < end; ++i) {
    if (src.is_punct(i, "=") || src.is_punct(i, "{") || src.is_punct(i, "[")) {
      stop = i;
      break;
    }
  }
  for (std::size_t i = stop; i > begin; --i) {
    if (src.tokens[i - 1].kind == Token::Kind::Ident) {
      return std::string(src.text(src.tokens[i - 1]));
    }
  }
  return "<unnamed>";
}

void scan_namespace_scope(const SourceFile& src, Emit& out) {
  enum class Ctx { Namespace, Class, Init, Body };
  std::vector<Ctx> stack = {Ctx::Namespace};  // file scope
  std::size_t stmt_begin = 0;

  auto classify = [&](std::size_t brace) -> Ctx {
    if (stack.back() == Ctx::Body) return Ctx::Body;
    if (stack.back() == Ctx::Init) return Ctx::Init;
    bool saw_class = false;
    bool saw_eq = false;
    bool saw_paren_close = false;
    for (std::size_t i = stmt_begin; i < brace; ++i) {
      if (src.tokens[i].kind == Token::Kind::Ident) {
        const std::string_view t = src.text(src.tokens[i]);
        if (t == "namespace") return Ctx::Namespace;
        if (t == "class" || t == "struct" || t == "union" || t == "enum") {
          saw_class = true;
        }
      } else if (src.is_punct(i, "=")) {
        saw_eq = true;
      } else if (src.is_punct(i, ")")) {
        saw_paren_close = true;
      }
    }
    if (saw_class && !saw_eq) return Ctx::Class;
    if (saw_eq) return Ctx::Init;
    if (saw_paren_close) return Ctx::Body;  // `…(params) qualifiers {`
    return Ctx::Init;                       // brace-init: `T x{…}`
  };

  for (std::size_t i = 0; i < src.tokens.size(); ++i) {
    if (src.is_punct(i, "{")) {
      const Ctx kind = classify(i);
      stack.push_back(kind);
      if (kind != Ctx::Init) stmt_begin = i + 1;
    } else if (src.is_punct(i, "}")) {
      if (stack.size() > 1) {
        const Ctx popped = stack.back();
        stack.pop_back();
        if (popped != Ctx::Init) stmt_begin = i + 1;
      }
    } else if (src.is_punct(i, ";")) {
      if (stack.back() == Ctx::Namespace && !statement_is_exempt(src, stmt_begin, i)) {
        const std::string name = declared_name(src, stmt_begin, i);
        emit(out, src, src.tokens[stmt_begin].line, "concurrency-purity",
             "mutable namespace-scope state '" + name +
                 "' is shared across ThreadPool workers; make it "
                 "const/constexpr/thread_local/atomic or pass it explicitly");
      }
      stmt_begin = i + 1;
    }
  }
}

void scan_static_locals(const FileIndex& index, const SourceFile& src,
                        std::uint32_t file_idx, Emit& out) {
  for (const FunctionDef& def : index.defs) {
    if (def.file != file_idx) continue;
    for (std::size_t i = def.body_begin; i < def.body_end && i < src.tokens.size();) {
      if (!src.is_ident(i, "static")) {
        ++i;
        continue;
      }
      std::size_t stmt_end = i;
      while (stmt_end < def.body_end && stmt_end < src.tokens.size() &&
             !src.is_punct(stmt_end, ";")) {
        ++stmt_end;
      }
      if (!statement_is_exempt(src, i, stmt_end)) {
        const std::string name = declared_name(src, i, stmt_end);
        emit(out, src, src.tokens[i].line, "concurrency-purity",
             "mutable function-local static '" + name +
                 "' persists across calls and is shared across ThreadPool workers; "
                 "make it const or hoist it into explicit per-session state");
      }
      i = stmt_end + 1;
    }
  }
}

}  // namespace

void rule_concurrency_purity(const FileIndex& index, Emit& out) {
  for (std::size_t fi = 0; fi < index.files.size(); ++fi) {
    const SourceFile& src = index.files[fi];
    if (!concurrency_applies(src.path)) continue;
    scan_namespace_scope(src, out);
    scan_static_locals(index, src, static_cast<std::uint32_t>(fi), out);
  }
}

}  // namespace lint
