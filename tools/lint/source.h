// Source model shared by every ds_lint pass (DESIGN.md §14).
//
// A file is loaded and lexed exactly once: comments and string/char
// literals are blanked into a parallel "code view" (preserving line
// structure so diagnostics stay line-accurate), then the code view is
// tokenised into one shared token stream. Every rule — local or
// whole-program — consumes that stream; no rule re-lexes.
//
// The lexer also harvests, per file:
//   * suppression sites (allow(rule) comments, with whether
//     a justification accompanies the directive) — the driver applies
//     them and the suppression-hygiene meta-rule audits them;
//   * quoted #include directives (for the include-graph pass);
//   * DS_HOT_BEGIN/DS_HOT_END region spans (for the region-local
//     allocation rule and the cross-TU reachability pass), plus any
//     marker-nesting errors found while pairing them.
#pragma once

#include <cstdint>
#include <filesystem>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace lint {

struct Token {
  enum class Kind : std::uint8_t { Ident, Number, Punct };
  Kind kind = Kind::Punct;
  std::uint32_t line = 0;  // 0-based index into SourceFile::code
  std::uint16_t col = 0;   // byte offset within the line
  std::uint16_t len = 0;
};

/// An allow(rule-a, rule-b) suppression comment with its reason. The
/// site covers its own line and the line below it (comment-above style).
struct AllowSite {
  std::uint32_t line = 0;  // 0-based line of the comment
  std::set<std::string> rules;
  bool has_reason = false;  // non-directive text present in the comment
};

/// A quoted `#include "path"` directive (system includes are not
/// interesting to any pass and are skipped at harvest time).
struct IncludeDirective {
  std::string target;      // the quoted path, verbatim
  std::uint32_t line = 0;  // 0-based
};

/// A DS_HOT_BEGIN … DS_HOT_END span, as token indices.
struct HotRegion {
  std::uint32_t begin_tok = 0;  // first token after DS_HOT_BEGIN
  std::uint32_t end_tok = 0;    // one past the last in-region token
  std::uint32_t begin_line = 0;  // 0-based line of DS_HOT_BEGIN
};

/// Marker-pairing diagnostics (nested begin, dangling end, unclosed
/// region) found while extracting regions; reported by the
/// no-alloc-markers rule so the messages stay with that rule.
struct MarkerError {
  std::uint32_t line = 0;  // 0-based
  std::string message;
};

struct SourceFile {
  std::string path;                 // repo-relative, '/'-separated
  std::vector<std::string> raw;     // original lines
  std::vector<std::string> code;    // comment/string-stripped lines
  std::vector<bool> preprocessor;   // line is a # directive (or its continuation)
  std::vector<Token> tokens;        // the one shared lex of `code`
  std::vector<AllowSite> allow_sites;
  // allow_rules[i] = rules suppressed for findings on line i (0-based),
  // derived from allow_sites (a site covers its line and the next).
  std::vector<std::set<std::string>> allow_rules;
  std::vector<IncludeDirective> includes;
  std::vector<HotRegion> hot_regions;
  std::vector<MarkerError> marker_errors;

  [[nodiscard]] std::string_view text(const Token& t) const {
    return std::string_view(code[t.line]).substr(t.col, t.len);
  }
  [[nodiscard]] bool is_ident(std::size_t i, std::string_view word) const {
    return tokens[i].kind == Token::Kind::Ident && text(tokens[i]) == word;
  }
  [[nodiscard]] bool is_punct(std::size_t i, std::string_view p) const {
    return tokens[i].kind == Token::Kind::Punct && text(tokens[i]) == p;
  }
  /// True when the line at `line` carries an allow() for `rule`.
  [[nodiscard]] bool suppressed(std::uint32_t line, const std::string& rule) const {
    return line < allow_rules.size() && allow_rules[line].count(rule) != 0;
  }
};

/// Load, strip, and lex one file. `rel` is the repo-relative path used
/// in diagnostics.
SourceFile load_source(const std::filesystem::path& abspath, std::string rel);

// Small shared predicates.
bool ident_char(char c);
bool starts_with(const std::string& s, const std::string& prefix);
bool is_header(const std::string& path);
/// SHOUTY_CASE identifiers are treated as macros by the heuristic
/// passes (never indexed as functions, never resolved as calls).
bool is_macro_name(std::string_view name);

}  // namespace lint
