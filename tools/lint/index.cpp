#include "lint/index.h"

#include <algorithm>
#include <set>

namespace fs = std::filesystem;

namespace lint {
namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

std::string rel_path(const fs::path& root, const fs::path& p) {
  return fs::relative(p, root).generic_string();
}

void walk_dir(const fs::path& dir, std::vector<fs::path>& out) {
  for (auto it = fs::recursive_directory_iterator(dir);
       it != fs::recursive_directory_iterator(); ++it) {
    if (it->is_directory()) {
      const std::string name = it->path().filename().string();
      // Fixtures violate on purpose; build trees aren't ours.
      if (name == "lint_fixtures" || starts_with(name, "build")) {
        it.disable_recursion_pending();
      }
      continue;
    }
    if (lintable(it->path())) out.push_back(it->path());
  }
}

/// Skip a balanced punct pair starting at token `i` (which must be the
/// opener). Returns the index one past the closer, or tokens.size()
/// when unbalanced.
std::size_t skip_balanced(const SourceFile& f, std::size_t i, std::string_view open,
                          std::string_view close) {
  int depth = 0;
  for (; i < f.tokens.size(); ++i) {
    if (f.is_punct(i, open)) {
      ++depth;
    } else if (f.is_punct(i, close)) {
      if (--depth == 0) return i + 1;
    }
  }
  return f.tokens.size();
}

/// Recognise function definitions in one file's token stream:
/// `name ( …params… ) [qualifiers|ctor-init-list] { body }`. Control
/// keywords and SHOUTY macro names are never candidates; candidates
/// that end in ';' are declarations and carry no body. Bodies nest
/// (lambdas, local structs) into their enclosing definition's span.
void index_functions(const SourceFile& f, std::uint32_t file_idx,
                     std::vector<FunctionDef>& out) {
  const auto& T = f.tokens;
  std::size_t i = 0;
  while (i < T.size()) {
    if (T[i].kind != Token::Kind::Ident || i + 1 >= T.size() || !f.is_punct(i + 1, "(")) {
      ++i;
      continue;
    }
    const std::string_view name = f.text(T[i]);
    if (is_reserved_word(name) || is_macro_name(name)) {
      ++i;
      continue;
    }
    // Balanced parameter list.
    std::size_t j = skip_balanced(f, i + 1, "(", ")");
    if (j >= T.size()) break;

    // Between the parameter list and the body: cv/ref/noexcept
    // qualifiers, trailing return types, `= default/delete/0`, or a
    // constructor init list whose groups are `ident (…)` / `ident {…}`.
    bool has_body = false;
    bool init_list = false;
    std::size_t k = j;
    while (k < T.size()) {
      if (f.is_punct(k, ";") || f.is_punct(k, "}")) break;  // declaration / misparse
      if (f.is_punct(k, "=")) {
        // `= default;` / `= delete;` / `= 0;` — scan to the ';'.
        while (k < T.size() && !f.is_punct(k, ";")) ++k;
        break;
      }
      if (f.is_punct(k, ":")) {
        init_list = true;
        ++k;
        continue;
      }
      if (f.is_punct(k, "(")) {
        k = skip_balanced(f, k, "(", ")");  // noexcept(…), init-list group
        continue;
      }
      if (f.is_punct(k, "{")) {
        // In an init list, `ident { … }` directly after a name is a
        // brace-init group, not the body; the body brace follows a
        // group's closer (or the plain `)` of the param list).
        if (init_list && k > 0 &&
            (T[k - 1].kind == Token::Kind::Ident || f.is_punct(k - 1, ">"))) {
          k = skip_balanced(f, k, "{", "}");
          continue;
        }
        has_body = true;
        break;
      }
      ++k;
    }
    if (!has_body) {
      i = j;
      continue;
    }
    const std::size_t body_begin = k + 1;
    const std::size_t body_end = skip_balanced(f, k, "{", "}");
    FunctionDef def;
    def.file = file_idx;
    def.name_line = T[i].line;
    def.name = std::string(name);
    def.body_begin = static_cast<std::uint32_t>(body_begin);
    def.body_end =
        static_cast<std::uint32_t>(body_end == 0 ? T.size() : body_end - 1);
    out.push_back(std::move(def));
    i = body_end;
  }
}

}  // namespace

bool is_reserved_word(std::string_view w) {
  static const std::set<std::string, std::less<>> kWords = {
      "if",      "for",     "while",    "switch",   "catch",    "return",
      "sizeof",  "alignof", "alignas",  "decltype", "typeid",   "noexcept",
      "operator", "new",    "delete",   "throw",    "case",     "goto",
      "default", "using",   "requires", "asm",      "co_await", "co_yield",
      "co_return", "static_assert",
  };
  return kWords.count(w) != 0;
}

FileIndex build_index(const fs::path& root, const std::vector<fs::path>& paths,
                      std::string* error) {
  FileIndex index;
  index.root = root;

  std::vector<fs::path> found;
  if (paths.empty()) {
    for (const char* top : {"src", "tools", "bench", "tests"}) {
      const fs::path dir = root / top;
      if (fs::exists(dir)) walk_dir(dir, found);
    }
  } else {
    for (const fs::path& p : paths) {
      const fs::path abs = fs::absolute(p);
      if (fs::is_directory(abs)) {
        walk_dir(abs, found);
      } else if (fs::exists(abs)) {
        found.push_back(abs);
      } else if (error != nullptr) {
        *error = "no such file: " + p.string();
        return index;
      }
    }
  }

  // Deterministic order regardless of directory iteration order; the
  // explicit-path form may name a file twice — index it once.
  std::sort(found.begin(), found.end());
  found.erase(std::unique(found.begin(), found.end()), found.end());

  index.files.reserve(found.size());
  for (const fs::path& p : found) {
    SourceFile src = load_source(p, rel_path(root, p));
    index.by_path.emplace(src.path, static_cast<std::uint32_t>(index.files.size()));
    index.files.push_back(std::move(src));
  }

  // Resolve quoted includes root-relatively against src/ (the single
  // `-I src` include model). Unresolved targets — system-style quoted
  // includes, "../" escapes — simply contribute no edge.
  const std::size_t n = index.files.size();
  index.include_edges.resize(n);
  index.include_edge_lines.resize(n);
  for (std::size_t fi = 0; fi < n; ++fi) {
    for (const IncludeDirective& inc : index.files[fi].includes) {
      const auto it = index.by_path.find("src/" + inc.target);
      if (it == index.by_path.end()) continue;
      index.include_edges[fi].push_back(it->second);
      index.include_edge_lines[fi].push_back(inc.line);
    }
  }

  // Transitive include closure per file (iterative DFS; the graph is
  // small — a few hundred nodes — so the simple per-root walk is fine).
  index.include_closure.resize(n);
  std::vector<char> seen(n, 0);
  std::vector<std::uint32_t> stack;
  for (std::size_t fi = 0; fi < n; ++fi) {
    std::fill(seen.begin(), seen.end(), 0);
    seen[fi] = 1;
    stack.assign(index.include_edges[fi].begin(), index.include_edges[fi].end());
    while (!stack.empty()) {
      const std::uint32_t at = stack.back();
      stack.pop_back();
      if (seen[at] != 0) continue;
      seen[at] = 1;
      index.include_closure[fi].push_back(at);
      for (const std::uint32_t next : index.include_edges[at]) {
        if (seen[next] == 0) stack.push_back(next);
      }
    }
    std::sort(index.include_closure[fi].begin(), index.include_closure[fi].end());
  }

  // Function definitions, in file order (files are path-sorted, so the
  // index — and everything derived from it — is walk-order independent).
  for (std::size_t fi = 0; fi < n; ++fi) {
    index_functions(index.files[fi], static_cast<std::uint32_t>(fi), index.defs);
  }
  for (std::size_t di = 0; di < index.defs.size(); ++di) {
    index.defs_by_name[index.defs[di].name].push_back(static_cast<std::uint32_t>(di));
  }
  return index;
}

}  // namespace lint
