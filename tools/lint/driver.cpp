#include "lint/driver.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "lint/index.h"
#include "lint/rules.h"

namespace lint {
namespace {

void json_escape(const std::string& s, std::string& out) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

void print_text(const std::vector<Finding>& findings) {
  for (const Finding& f : findings) {
    std::printf("%s:%zu: %s: %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
    if (!f.chain.empty()) {
      std::string via = "    via ";
      for (std::size_t i = 0; i < f.chain.size(); ++i) {
        if (i != 0) via += " -> ";
        via += f.chain[i];
      }
      std::printf("%s\n", via.c_str());
    }
  }
}

void print_json(const Options& options, const std::vector<Finding>& findings) {
  std::string buf = "{\n  \"root\": \"";
  json_escape(options.root.generic_string(), buf);
  buf += "\",\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    buf += i == 0 ? "\n" : ",\n";
    buf += "    {\"file\": \"";
    json_escape(f.file, buf);
    buf += "\", \"line\": " + std::to_string(f.line) + ", \"rule\": \"";
    json_escape(f.rule, buf);
    buf += "\", \"message\": \"";
    json_escape(f.message, buf);
    buf += "\", \"chain\": [";
    for (std::size_t c = 0; c < f.chain.size(); ++c) {
      if (c != 0) buf += ", ";
      buf += "\"";
      json_escape(f.chain[c], buf);
      buf += "\"";
    }
    buf += "]}";
  }
  buf += findings.empty() ? "]\n}\n" : "\n  ]\n}\n";
  std::fwrite(buf.data(), 1, buf.size(), stdout);
}

/// Suppression pass: drop findings covered by an allow() on the same or
/// the preceding line, recording which (site, rule) pairs earned their
/// keep. Unsuppressable findings (hygiene, layer-table coherence) pass
/// through untouched.
std::vector<Finding> apply_suppressions(
    const FileIndex& index, std::vector<Finding> raw,
    std::map<std::string, std::set<std::pair<std::uint32_t, std::string>>>& used) {
  std::vector<Finding> kept;
  kept.reserve(raw.size());
  for (Finding& f : raw) {
    if (f.unsuppressable || f.line == 0) {
      kept.push_back(std::move(f));
      continue;
    }
    const SourceFile* src = index.find(f.file);
    const std::uint32_t li = static_cast<std::uint32_t>(f.line - 1);
    if (src == nullptr || !src->suppressed(li, f.rule)) {
      kept.push_back(std::move(f));
      continue;
    }
    // Credit every covering site that names the rule (a suppression on
    // the line and another above both count as exercised).
    for (const AllowSite& site : src->allow_sites) {
      if ((site.line == li || site.line + 1 == li) && site.rules.count(f.rule) != 0) {
        used[f.file].emplace(site.line, f.rule);
      }
    }
  }
  return kept;
}

/// The suppression-hygiene meta-rule, run over the usage ledger: every
/// allow() must name a rule that raw-fired on a line it covers, and the
/// comment must say WHY. Its findings are unsuppressable — an allow()
/// cannot vouch for itself.
void check_suppression_hygiene(
    const FileIndex& index,
    const std::map<std::string, std::set<std::pair<std::uint32_t, std::string>>>& used,
    std::vector<Finding>& out) {
  for (const SourceFile& src : index.files) {
    const auto used_it = used.find(src.path);
    for (const AllowSite& site : src.allow_sites) {
      for (const std::string& rule : site.rules) {
        if (!rule_exists(rule)) {
          out.push_back(Finding{src.path, site.line + 1, "suppression-hygiene",
                                "allow() names unknown rule '" + rule + "'",
                                {}, true});
          continue;
        }
        const bool exercised =
            used_it != used.end() &&
            used_it->second.count(std::make_pair(site.line, rule)) != 0;
        if (!exercised) {
          out.push_back(Finding{src.path, site.line + 1, "suppression-hygiene",
                                "stale allow(" + rule + "): no " + rule +
                                    " finding on this or the next line; remove it",
                                {}, true});
        }
      }
      if (!site.has_reason) {
        out.push_back(Finding{src.path, site.line + 1, "suppression-hygiene",
                              "allow() carries no justification; say why in the "
                              "same comment",
                              {}, true});
      }
    }
  }
}

}  // namespace

void list_rules() {
  for (const Rule& rule : registry()) {
    std::printf("%-26s %s\n", rule.name, rule.summary);
  }
}

int run(const Options& options) {
  const auto t0 = std::chrono::steady_clock::now();
  if (!options.only_rule.empty() && !rule_exists(options.only_rule)) {
    std::fprintf(stderr, "ds_lint: unknown rule '%s' (try --list-rules)\n",
                 options.only_rule.c_str());
    return kExitUsage;
  }

  std::string error;
  const FileIndex index =
      build_index(std::filesystem::absolute(options.root), options.paths, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "ds_lint: %s\n", error.c_str());
    return kExitUsage;
  }
  const auto t_index = std::chrono::steady_clock::now();

  if (!options.include_graph_path.empty()) {
    std::FILE* out = options.include_graph_path == "-"
                         ? stdout
                         : std::fopen(options.include_graph_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "ds_lint: cannot write '%s'\n",
                   options.include_graph_path.c_str());
      return kExitUsage;
    }
    write_include_graph_json(index, out);
    if (out != stdout) std::fclose(out);
  }

  // Raw findings: file-local rules in registry order over each file,
  // then the whole-program passes. This ordering is what makes the
  // dedup below prefer region-local findings over reachability
  // duplicates of the same (file, line, rule).
  std::vector<Finding> raw;
  for (const Rule& rule : registry()) {
    if (rule.scan_file == nullptr) continue;
    for (const SourceFile& src : index.files) {
      if (rule.applies(src.path)) rule.scan_file(src, raw);
    }
  }
  const auto t_local = std::chrono::steady_clock::now();
  for (const Rule& rule : registry()) {
    if (rule.scan_tree != nullptr) rule.scan_tree(index, raw);
  }
  const auto t_tree = std::chrono::steady_clock::now();

  // Dedup keeps the earliest-emitted finding per (file, line, rule).
  std::stable_sort(raw.begin(), raw.end(),
                   [](const Finding& a, const Finding& b) { return a < b; });
  raw.erase(std::unique(raw.begin(), raw.end(),
                        [](const Finding& a, const Finding& b) {
                          return !(a < b) && !(b < a);
                        }),
            raw.end());

  std::map<std::string, std::set<std::pair<std::uint32_t, std::string>>> used;
  std::vector<Finding> findings = apply_suppressions(index, std::move(raw), used);
  check_suppression_hygiene(index, used, findings);
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) { return a < b; });

  if (!options.only_rule.empty()) {
    findings.erase(std::remove_if(findings.begin(), findings.end(),
                                  [&](const Finding& f) {
                                    return f.rule != options.only_rule;
                                  }),
                   findings.end());
  }

  if (options.json) {
    print_json(options, findings);
  } else {
    print_text(findings);
  }

  const auto t_end = std::chrono::steady_clock::now();
  const auto ms = [](auto from, auto to) {
    return static_cast<double>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   to - from)
                                   .count()) /
           1000.0;
  };
  std::fprintf(stderr,
               "ds_lint: %zu files, %zu findings, %.1f ms "
               "(index %.1f, local %.1f, tree %.1f, report %.1f)\n",
               index.files.size(), findings.size(), ms(t0, t_end), ms(t0, t_index),
               ms(t_index, t_local), ms(t_local, t_tree), ms(t_tree, t_end));
  return findings.empty() ? kExitClean : kExitFindings;
}

}  // namespace lint
