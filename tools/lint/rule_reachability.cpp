// Hot-path call-graph reachability: upgrade the DS_HOT invariants from
// region-local to reachable-from-region.
//
// A DS_HOT region declares "steady-state allocation-free, deterministic
// time, deterministic randomness". The region-local rules only see the
// region's own tokens; a helper one call away — possibly in another TU
// — could allocate freely. This pass walks the call graph:
//
//   seeds   = callees invoked lexically inside any DS_HOT region
//   expand  = breadth-first through each visited definition's calls,
//             depth-capped (kMaxDepth) so one noisy resolution cannot
//             drag in the world
//   check   = run the shared alloc/RNG/wallclock detectors over every
//             visited body (skipping tokens that sit inside that file's
//             own DS_HOT regions — those are the local rule's findings)
//
// Call resolution is name-based but VISIBILITY-SCOPED: a call in file F
// resolves only to definitions in F itself, in F's include closure, or
// in a .cpp whose same-stem header is in that closure (C++ requires a
// visible declaration, and this repo pairs x.cpp with x.h). That keeps
// unrelated same-name functions in far corners of the tree from
// creating false edges. BFS order means each definition is reached by a
// shortest chain, which is what the two-line explanation prints.
//
// Findings are emitted under the rule names they upgrade
// (no-alloc-markers / no-ambient-rng / no-wallclock) with the call
// chain attached; the driver prefers a region-local finding over a
// reachability duplicate at the same (file, line, rule), so chains only
// appear where the local rules could not see. Per-rule file allowlists
// apply to the file CONTAINING the violation: obs/ owns wall timing
// even when reached from a hot path. False-negative envelope (virtual
// dispatch, function pointers, macros) is documented in DESIGN.md §14.
#include <algorithm>
#include <deque>
#include <string>

#include "lint/rules.h"

namespace lint {
namespace {

constexpr std::uint32_t kMaxDepth = 8;

struct Node {
  std::uint32_t def = 0;    // index into FileIndex::defs
  std::uint32_t depth = 0;  // hops from the region
  std::int32_t parent = -1; // index into the node arena, -1 = seeded
  std::string seed;         // parent == -1: "file:line (DS_HOT region)"
};

bool in_closure(const FileIndex& index, std::uint32_t from, std::uint32_t target) {
  const auto& closure = index.include_closure[from];
  return std::binary_search(closure.begin(), closure.end(), target);
}

/// Definitions a call to `name` from `caller_file` may reach.
void resolve_call(const FileIndex& index, std::uint32_t caller_file,
                  std::string_view name, std::vector<std::uint32_t>& out) {
  const auto it = index.defs_by_name.find(name);
  if (it == index.defs_by_name.end()) return;
  for (const std::uint32_t di : it->second) {
    const std::uint32_t def_file = index.defs[di].file;
    bool visible = def_file == caller_file || in_closure(index, caller_file, def_file);
    if (!visible) {
      // x.cpp is "visible" when its header x.h is: the declaration is
      // in scope and the definition links in.
      const std::string& def_path = index.files[def_file].path;
      const std::size_t dot = def_path.rfind('.');
      if (dot != std::string::npos && def_path.compare(dot, std::string::npos, ".h") != 0) {
        const auto hdr = index.by_path.find(def_path.substr(0, dot) + ".h");
        visible = hdr != index.by_path.end() &&
                  (hdr->second == caller_file ||
                   in_closure(index, caller_file, hdr->second));
      }
    }
    if (visible) out.push_back(di);
  }
}

/// Call sites in [begin, end) of `src`: an identifier directly followed
/// by '(' that is neither a reserved word, a macro invocation, nor a
/// definition's own name (the indexer already consumed those spans for
/// seeds; for bodies a local redefinition cannot occur).
void collect_calls(const SourceFile& src, std::size_t begin, std::size_t end,
                   std::vector<std::size_t>& out) {
  for (std::size_t i = begin; i + 1 < src.tokens.size() && i + 1 <= end; ++i) {
    if (src.tokens[i].kind != Token::Kind::Ident || !src.is_punct(i + 1, "(")) continue;
    const std::string_view name = src.text(src.tokens[i]);
    if (is_reserved_word(name) || is_macro_name(name)) continue;
    out.push_back(i);
  }
}

bool token_in_hot_region(const SourceFile& src, std::size_t i) {
  for (const HotRegion& r : src.hot_regions) {
    if (i >= r.begin_tok && i < r.end_tok) return true;
  }
  return false;
}

bool violating_file_applies(const char* rule, const std::string& path) {
  if (std::string_view(rule) == "no-wallclock") return wallclock_applies(path);
  if (std::string_view(rule) == "no-ambient-rng") return rng_applies(path);
  return true;  // no-alloc-markers has no file allowlist
}

std::string def_label(const FileIndex& index, const FunctionDef& def) {
  return def.name + " (" + index.files[def.file].path + ":" +
         std::to_string(def.name_line + 1) + ")";
}

}  // namespace

void rule_hot_path_reachability(const FileIndex& index, Emit& out) {
  std::vector<Node> nodes;
  std::deque<std::uint32_t> queue;
  std::vector<char> visited(index.defs.size(), 0);

  auto enqueue = [&](std::uint32_t di, std::uint32_t depth, std::int32_t parent,
                     std::string seed) {
    if (visited[di] != 0) return;
    visited[di] = 1;
    nodes.push_back(Node{di, depth, parent, std::move(seed)});
    queue.push_back(static_cast<std::uint32_t>(nodes.size() - 1));
  };

  // Seed: every call made lexically inside a DS_HOT region.
  for (std::size_t fi = 0; fi < index.files.size(); ++fi) {
    const SourceFile& src = index.files[fi];
    for (const HotRegion& region : src.hot_regions) {
      std::vector<std::size_t> calls;
      collect_calls(src, region.begin_tok, region.end_tok, calls);
      for (const std::size_t call_tok : calls) {
        std::vector<std::uint32_t> targets;
        resolve_call(index, static_cast<std::uint32_t>(fi),
                     src.text(src.tokens[call_tok]), targets);
        const std::string seed = src.path + ":" +
                                 std::to_string(src.tokens[call_tok].line + 1) +
                                 " (DS_HOT region)";
        for (const std::uint32_t di : targets) enqueue(di, 1, -1, seed);
      }
    }
  }

  // BFS: check each visited body, expand its calls.
  while (!queue.empty()) {
    const std::uint32_t ni = queue.front();
    queue.pop_front();
    const Node node = nodes[ni];  // copy: nodes may reallocate on enqueue
    const FunctionDef& def = index.defs[node.def];
    const SourceFile& src = index.files[def.file];

    // Render the chain root → this definition once per node.
    std::vector<std::string> chain;
    for (std::int32_t at = static_cast<std::int32_t>(ni); at != -1;
         at = nodes[at].parent) {
      chain.push_back(def_label(index, index.defs[nodes[at].def]));
      if (nodes[at].parent == -1) chain.push_back(nodes[at].seed);
    }
    std::reverse(chain.begin(), chain.end());

    const auto sink = [&](std::size_t tok, const char* rule, std::string desc) {
      if (token_in_hot_region(src, tok)) return;  // local rule's finding
      if (!violating_file_applies(rule, src.path)) return;
      Finding f;
      f.file = src.path;
      f.line = src.tokens[tok].line + 1;
      f.rule = rule;
      f.message = desc + " on a path reachable from a DS_HOT region";
      f.chain = chain;
      out.push_back(std::move(f));
    };
    detect_alloc_markers(src, def.body_begin, def.body_end, sink);
    detect_ambient_rng(src, def.body_begin, def.body_end, sink);
    detect_wallclock(src, def.body_begin, def.body_end, sink);

    if (node.depth >= kMaxDepth) continue;
    std::vector<std::size_t> calls;
    collect_calls(src, def.body_begin, def.body_end, calls);
    for (const std::size_t call_tok : calls) {
      std::vector<std::uint32_t> targets;
      resolve_call(index, def.file, src.text(src.tokens[call_tok]), targets);
      for (const std::uint32_t di : targets) {
        enqueue(di, node.depth + 1, static_cast<std::int32_t>(ni), {});
      }
    }
  }
}

}  // namespace lint
