// Include-graph layering: the committed module layer table for src/,
// checked against the real #include DAG on every lint run.
//
// Components are directories under src/ (with one file-granular split:
// src/obs/replay* is its own component, mirroring the separate
// ds_obs_replay library target — replay DRIVES a device, so it sits
// above core, while the rest of obs/ is a leaf-ish recording layer that
// core may depend on). Every allowed edge is listed explicitly and must
// point at a strictly lower layer, so upward dependencies and new
// cross-module couplings fail the build the moment they are introduced
// rather than in review.
//
// Intra-component includes are unrestricted here; file-level cycles
// (which would break any topological build order, even within one
// component) are caught separately by a DFS over the file graph.
#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "lint/rules.h"

namespace lint {
namespace {

struct Component {
  const char* name;
  int layer;
  // Path prefix owning this component; longest match wins so
  // "src/obs/replay" beats "src/obs/".
  const char* prefix;
  std::vector<const char*> deps;  // components this one may include
};

/// The declared architecture. Order: leaf layers first. Kept in one
/// table (rather than per-directory metadata files) so a reviewer can
/// read the whole system shape in one screen; DESIGN.md §14 carries the
/// prose version.
const std::vector<Component>& layer_table() {
  static const std::vector<Component> kTable = {
      {"util", 0, "src/util/", {}},
      {"sim", 1, "src/sim/", {"util"}},
      {"menu", 2, "src/menu/", {"sim"}},
      {"obs", 2, "src/obs/", {"sim", "util"}},
      {"hw", 3, "src/hw/", {"obs", "sim", "util"}},
      {"sensors", 3, "src/sensors/", {"obs", "sim", "util"}},
      {"display", 4, "src/display/", {"hw", "util"}},
      {"input", 4, "src/input/", {"hw", "sim", "util"}},
      {"wireless", 4, "src/wireless/", {"hw", "obs", "sim", "util"}},
      {"game", 5, "src/game/", {"display", "sim"}},
      {"core", 5, "src/core/",
       {"display", "hw", "input", "menu", "obs", "sensors", "sim", "util", "wireless"}},
      {"baselines", 6, "src/baselines/", {"core", "obs", "sensors", "sim", "util"}},
      {"host", 6, "src/host/", {"obs", "sim", "util", "wireless"}},
      {"pda", 6, "src/pda/",
       {"core", "hw", "input", "menu", "sensors", "sim", "util", "wireless"}},
      {"obs_replay", 6, "src/obs/replay", {"core", "menu", "obs", "sim", "util"}},
      {"human", 7, "src/human/", {"baselines", "sim", "util"}},
      {"text", 8, "src/text/", {"baselines", "human", "sim", "util"}},
      {"study", 8, "src/study/",
       {"baselines", "core", "human", "input", "menu", "obs", "sensors", "sim", "util"}},
  };
  return kTable;
}

const Component* component_of(const std::string& path) {
  const Component* best = nullptr;
  std::size_t best_len = 0;
  for (const Component& c : layer_table()) {
    const std::string prefix(c.prefix);
    if (starts_with(path, prefix) && prefix.size() > best_len) {
      best = &c;
      best_len = prefix.size();
    }
  }
  return best;
}

/// The table itself must be coherent: every dep names a known component
/// on a strictly lower layer. Emitted as unsuppressable findings so a
/// bad table edit cannot be waved through.
void validate_table(Emit& out) {
  std::map<std::string, int> layers;
  for (const Component& c : layer_table()) layers.emplace(c.name, c.layer);
  for (const Component& c : layer_table()) {
    for (const char* dep : c.deps) {
      const auto it = layers.find(dep);
      std::string problem;
      if (it == layers.end()) {
        problem = "unknown component '" + std::string(dep) + "'";
      } else if (it->second >= c.layer) {
        problem = "dep '" + std::string(dep) + "' (L" + std::to_string(it->second) +
                  ") is not below L" + std::to_string(c.layer);
      }
      if (!problem.empty()) {
        out.push_back(Finding{"tools/lint/rule_layering.cpp", 1, "include-layering",
                              "layer table is incoherent: component '" +
                                  std::string(c.name) + "': " + problem,
                              {}, true});
      }
    }
  }
}

void check_edges(const FileIndex& index, Emit& out) {
  for (std::size_t fi = 0; fi < index.files.size(); ++fi) {
    const SourceFile& src = index.files[fi];
    if (!starts_with(src.path, "src/")) continue;
    const Component* from = component_of(src.path);
    for (std::size_t e = 0; e < index.include_edges[fi].size(); ++e) {
      const SourceFile& dst = index.files[index.include_edges[fi][e]];
      const Component* to = component_of(dst.path);
      const std::uint32_t line = index.include_edge_lines[fi][e];
      if (from == nullptr || to == nullptr) {
        const std::string& odd = from == nullptr ? src.path : dst.path;
        emit(out, src, line, "include-layering",
             "'" + odd + "' belongs to no declared component; add it to the layer "
                         "table in tools/lint/rule_layering.cpp");
        continue;
      }
      if (from == to) continue;  // intra-component; cycles caught below
      const bool allowed =
          std::any_of(from->deps.begin(), from->deps.end(),
                      [&](const char* d) { return std::string(d) == to->name; });
      if (!allowed) {
        const char* direction = to->layer >= from->layer ? "upward " : "";
        emit(out, src, line, "include-layering",
             "include of '" + dst.path + "' is an undeclared " +
                 std::string(direction) + "edge: '" + from->name + "' (L" +
                 std::to_string(from->layer) + ") -> '" + to->name + "' (L" +
                 std::to_string(to->layer) + ") is not in the layer table");
      }
    }
  }
}

/// File-level cycle detection over the resolved include graph. Each
/// distinct cycle is reported once, anchored at its lexicographically
/// smallest file (deterministic regardless of discovery order).
void check_cycles(const FileIndex& index, Emit& out) {
  const std::size_t n = index.files.size();
  enum : char { kWhite, kGrey, kBlack };
  std::vector<char> color(n, kWhite);
  std::vector<std::uint32_t> path;       // current DFS chain of grey nodes
  std::set<std::string> reported;        // canonical cycle keys

  struct Frame {
    std::uint32_t node;
    std::size_t next_edge;
  };
  std::vector<Frame> stack;

  auto report = [&](std::size_t cycle_start) {
    // path[cycle_start..] closes back to path[cycle_start].
    std::vector<std::uint32_t> cycle(path.begin() +
                                         static_cast<std::ptrdiff_t>(cycle_start),
                                     path.end());
    // Canonicalise: rotate so the smallest path starts the cycle.
    std::size_t smallest = 0;
    for (std::size_t i = 1; i < cycle.size(); ++i) {
      if (index.files[cycle[i]].path < index.files[cycle[smallest]].path) smallest = i;
    }
    std::rotate(cycle.begin(), cycle.begin() + static_cast<std::ptrdiff_t>(smallest),
                cycle.end());
    std::string key;
    std::string pretty;
    for (const std::uint32_t f : cycle) {
      key += index.files[f].path + "|";
      pretty += index.files[f].path + " -> ";
    }
    pretty += index.files[cycle[0]].path;
    if (!reported.insert(key).second) return;

    // Anchor the finding at the smallest file's include of the next hop.
    const std::uint32_t anchor = cycle[0];
    const std::uint32_t next = cycle.size() > 1 ? cycle[1] : cycle[0];
    std::uint32_t line = 0;
    for (std::size_t e = 0; e < index.include_edges[anchor].size(); ++e) {
      if (index.include_edges[anchor][e] == next) {
        line = index.include_edge_lines[anchor][e];
        break;
      }
    }
    emit(out, index.files[anchor], line, "include-layering",
         "include cycle: " + pretty);
  };

  for (std::uint32_t root = 0; root < n; ++root) {
    if (color[root] != kWhite) continue;
    stack.push_back(Frame{root, 0});
    color[root] = kGrey;
    path.push_back(root);
    while (!stack.empty()) {
      Frame& top = stack.back();
      if (top.next_edge < index.include_edges[top.node].size()) {
        const std::uint32_t next = index.include_edges[top.node][top.next_edge++];
        if (color[next] == kWhite) {
          color[next] = kGrey;
          path.push_back(next);
          stack.push_back(Frame{next, 0});
        } else if (color[next] == kGrey) {
          const auto at = std::find(path.begin(), path.end(), next);
          report(static_cast<std::size_t>(at - path.begin()));
        }
      } else {
        color[top.node] = kBlack;
        path.pop_back();
        stack.pop_back();
      }
    }
  }
}

void json_escape(const std::string& s, std::string& out) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

}  // namespace

void rule_include_layering(const FileIndex& index, Emit& out) {
  validate_table(out);
  check_edges(index, out);
  check_cycles(index, out);
}

void write_include_graph_json(const FileIndex& index, std::FILE* out) {
  std::string buf = "{\n  \"components\": [\n";
  const auto& table = layer_table();
  for (std::size_t i = 0; i < table.size(); ++i) {
    buf += "    {\"name\": \"";
    buf += table[i].name;
    buf += "\", \"layer\": " + std::to_string(table[i].layer) + ", \"deps\": [";
    for (std::size_t d = 0; d < table[i].deps.size(); ++d) {
      if (d != 0) buf += ", ";
      buf += "\"";
      buf += table[i].deps[d];
      buf += "\"";
    }
    buf += "]}";
    buf += i + 1 < table.size() ? ",\n" : "\n";
  }
  buf += "  ],\n  \"files\": [\n";
  bool first = true;
  for (std::size_t fi = 0; fi < index.files.size(); ++fi) {
    const SourceFile& src = index.files[fi];
    if (!starts_with(src.path, "src/")) continue;
    if (!first) buf += ",\n";
    first = false;
    const Component* comp = component_of(src.path);
    buf += "    {\"path\": \"";
    json_escape(src.path, buf);
    buf += "\", \"component\": \"";
    buf += comp != nullptr ? comp->name : "";
    buf += "\", \"includes\": [";
    for (std::size_t e = 0; e < index.include_edges[fi].size(); ++e) {
      if (e != 0) buf += ", ";
      buf += "\"";
      json_escape(index.files[index.include_edges[fi][e]].path, buf);
      buf += "\"";
    }
    buf += "]}";
  }
  buf += "\n  ]\n}\n";
  std::fwrite(buf.data(), 1, buf.size(), out);
}

}  // namespace lint
