// Orchestration for the multi-pass linter: build the FileIndex once,
// run every registered pass over it, then post-process —
//
//   raw findings
//     → dedup by (file, line, rule), preferring the earliest pass
//       (region-local findings beat reachability duplicates)
//     → per-line allow() suppression + usage tracking
//     → suppression-hygiene findings from the usage ledger
//     → sort, optional --rule filter, text or JSON rendering
//
// The CLI in tools/ds_lint.cpp is a thin flag parser around run().
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace lint {

struct Options {
  std::filesystem::path root = ".";
  std::vector<std::filesystem::path> paths;  // empty = default walk
  std::string only_rule;                     // empty = all rules
  bool json = false;                         // --format=json
  std::string include_graph_path;            // --include-graph FILE ("-" = stdout)
};

inline constexpr int kExitClean = 0;
inline constexpr int kExitFindings = 1;
inline constexpr int kExitUsage = 64;  // EX_USAGE; also config/IO errors

/// Run the configured lint. Renders findings to stdout, a one-line
/// run summary (file count, finding count, wall time) to stderr, and
/// returns the exit code.
int run(const Options& options);

/// Print `name  summary` per registered rule.
void list_rules();

}  // namespace lint
