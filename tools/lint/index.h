// Whole-program file index: every lintable file under the walk, loaded
// and lexed exactly once, plus the two cross-TU structures the
// whole-program passes consume —
//
//   * the resolved #include graph over indexed src/ files (quoted
//     includes are root-relative per the single `-I src` model, so
//     "study/task.h" resolves to the indexed "src/study/task.h"), with
//     per-file transitive closures used both by the layering pass and
//     to scope call resolution to names actually visible to a TU;
//
//   * a lightweight function definition index (name → definitions with
//     token-span bodies), built by a heuristic recogniser over the
//     shared token stream. It is deliberately lexical: see DESIGN.md
//     §14 for the approximations and their false-negative envelope.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "lint/source.h"

namespace lint {

struct FunctionDef {
  std::uint32_t file = 0;       // index into FileIndex::files
  std::uint32_t name_line = 0;  // 0-based line of the definition's name
  std::string name;             // unqualified identifier
  std::uint32_t body_begin = 0;  // token range of the body, [begin, end)
  std::uint32_t body_end = 0;
};

struct FileIndex {
  std::filesystem::path root;
  std::vector<SourceFile> files;           // sorted by path
  std::map<std::string, std::uint32_t> by_path;

  // include_edges[f] = indices of files f includes (resolved, indexed
  // files only), parallel with include_edge_lines (0-based line of the
  // directive).
  std::vector<std::vector<std::uint32_t>> include_edges;
  std::vector<std::vector<std::uint32_t>> include_edge_lines;
  // include_closure[f] = every file transitively reachable from f via
  // include_edges (excluding f itself), sorted.
  std::vector<std::vector<std::uint32_t>> include_closure;

  std::vector<FunctionDef> defs;
  // Unqualified name → indices into `defs`, in deterministic
  // (file-path, token) order.
  std::map<std::string, std::vector<std::uint32_t>, std::less<>> defs_by_name;

  [[nodiscard]] const SourceFile* find(const std::string& rel_path) const {
    const auto it = by_path.find(rel_path);
    return it == by_path.end() ? nullptr : &files[it->second];
  }
};

/// Identifiers that can precede '(' without being a callable name
/// (control keywords, operators, cast-like constructs). Shared between
/// the definition indexer and the reachability pass's call scanner.
bool is_reserved_word(std::string_view w);

/// Walk `paths` (or the default src/tools/bench/tests walk when empty)
/// under `root`, load + lex every lintable file, and build the include
/// graph and function index. Identical skip rules to the historic walk:
/// lint_fixtures/ and build*/ directories are never entered.
FileIndex build_index(const std::filesystem::path& root,
                      const std::vector<std::filesystem::path>& paths,
                      std::string* error);

}  // namespace lint
