// Rule registry for the multi-pass framework.
//
// Two pass shapes share one registry:
//   * file-local rules (`scan_file`) — run once per indexed file whose
//     path passes `applies`; these are the original seven determinism
//     rules, migrated onto the shared token stream;
//   * whole-program passes (`scan_tree`) — run once over the full
//     FileIndex (include-graph layering, hot-path call-graph
//     reachability, concurrency purity).
//
// Every pass emits RAW findings: the driver applies suppressions and
// file-scope allowlists afterwards, so the suppression-hygiene
// meta-rule can audit which allow() sites actually earn their keep.
// A pass that wants a finding exempt from per-line suppression (the
// hygiene findings themselves) sets Finding::unsuppressable.
//
// The reachability pass deliberately emits findings under the rule
// names it upgrades (no-alloc-markers, no-ambient-rng, no-wallclock):
// a cross-TU hot-path allocation IS a no-alloc-markers violation, just
// found further from the region, and suppressing it uses the same
// allow() spelling. The pass itself still has a registry entry
// (hot-path-reachability) for --list-rules discoverability.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "lint/index.h"
#include "lint/source.h"

namespace lint {

struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
  // Call chain for reachability findings, hop by hop (rendered as an
  // indented `via …` line in text output, an array in JSON).
  std::vector<std::string> chain;
  bool unsuppressable = false;

  bool operator<(const Finding& other) const {
    if (file != other.file) return file < other.file;
    if (line != other.line) return line < other.line;
    return rule < other.rule;
  }
};

using Emit = std::vector<Finding>;

/// Raw-emit helper: 0-based line in, 1-based line recorded.
void emit(Emit& out, const SourceFile& src, std::size_t line_index, const char* rule,
          std::string message);

struct Rule {
  const char* name;
  const char* summary;
  // Exactly one of scan_file / scan_tree is set.
  bool (*applies)(const std::string& path);            // scan_file only
  void (*scan_file)(const SourceFile&, Emit&);
  void (*scan_tree)(const FileIndex&, Emit&);
};

const std::vector<Rule>& registry();
bool rule_exists(const std::string& name);

// --- shared violation detectors -------------------------------------------
// Used by both the region-local no-alloc-markers rule and the cross-TU
// reachability pass (and mirrored by the ambient-RNG / wallclock
// scans). `sink` receives (token_index, rule, message).
using DetectorSink = std::function<void(std::size_t, const char*, std::string)>;

/// Allocation markers in [begin, end): `new`, the make_/malloc family,
/// and container-growth member calls.
void detect_alloc_markers(const SourceFile& src, std::size_t begin, std::size_t end,
                          const DetectorSink& sink);
/// Ambient randomness in [begin, end): engine types and rand()-family
/// calls in call position.
void detect_ambient_rng(const SourceFile& src, std::size_t begin, std::size_t end,
                        const DetectorSink& sink);
/// Host-clock reads in [begin, end): chrono clock types, POSIX time
/// calls, and bare time()/clock() in call position.
void detect_wallclock(const SourceFile& src, std::size_t begin, std::size_t end,
                      const DetectorSink& sink);

// File-scope allowlists shared between the local rules and the
// reachability pass (which honours them for the file containing the
// violation — obs/ owns wall timing even when reached from a hot path).
bool wallclock_applies(const std::string& path);
bool rng_applies(const std::string& path);

// Hook for the layering pass: the include-graph JSON exporter lives
// beside the layer table so the two can never drift.
void write_include_graph_json(const FileIndex& index, std::FILE* out);

}  // namespace lint
