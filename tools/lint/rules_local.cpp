// The original seven determinism rules, migrated onto the shared token
// stream (one lex per file; every scan below is a walk over
// SourceFile::tokens or the pre-split lines — no rule re-lexes).
// Diagnostic positions are pinned by tests/lint_fixtures/expected.txt.
#include <algorithm>
#include <set>
#include <string>

#include "lint/rules.h"

namespace lint {

void emit(Emit& out, const SourceFile& src, std::size_t line_index, const char* rule,
          std::string message) {
  out.push_back(Finding{src.path, line_index + 1, rule, std::move(message), {}, false});
}

namespace {

/// Index of the previous token on the same line, or npos (the call
/// heuristics are deliberately line-local, like the lexer they
/// replaced: a line break before '(' reads as a declaration, not a
/// call).
std::size_t prev_on_line(const SourceFile& src, std::size_t i) {
  if (i == 0 || src.tokens[i - 1].line != src.tokens[i].line) return std::string::npos;
  return i - 1;
}

/// True when tokens[i+1] is `p` and starts exactly where tokens[i]
/// ends (e.g. `time(` as opposed to `time (`).
bool adjacent_punct(const SourceFile& src, std::size_t i, std::string_view p) {
  if (i + 1 >= src.tokens.size()) return false;
  const Token& a = src.tokens[i];
  const Token& b = src.tokens[i + 1];
  return b.line == a.line && b.col == a.col + a.len && src.is_punct(i + 1, p);
}

/// One past a balanced template argument list opening at token `i`
/// (`>>` lexes as two '>' tokens, so nesting counts correctly);
/// returns `i` when tokens[i] is not '<'.
std::size_t skip_template_args(const SourceFile& src, std::size_t i) {
  if (i >= src.tokens.size() || !src.is_punct(i, "<")) return i;
  int depth = 0;
  for (; i < src.tokens.size(); ++i) {
    if (src.is_punct(i, "<")) ++depth;
    if (src.is_punct(i, ">") && --depth == 0) return i + 1;
  }
  return src.tokens.size();
}

bool punct_in(const SourceFile& src, std::size_t i, std::string_view set_of_chars) {
  if (src.tokens[i].kind != Token::Kind::Punct || src.tokens[i].len != 1) return false;
  return set_of_chars.find(src.code[src.tokens[i].line][src.tokens[i].col]) !=
         std::string_view::npos;
}

}  // namespace

// --- shared detectors -----------------------------------------------------

void detect_alloc_markers(const SourceFile& src, std::size_t begin, std::size_t end,
                          const DetectorSink& sink) {
  static const std::set<std::string, std::less<>> kCalls = {
      "make_unique", "make_shared", "malloc", "calloc", "realloc", "strdup",
  };
  static const std::set<std::string, std::less<>> kGrowth = {
      "push_back", "emplace_back", "emplace", "insert", "resize", "reserve", "append",
  };
  for (std::size_t i = begin; i < end && i < src.tokens.size(); ++i) {
    if (src.tokens[i].kind != Token::Kind::Ident) continue;
    const std::string_view text = src.text(src.tokens[i]);
    if (text == "new") {
      const std::size_t p = prev_on_line(src, i);
      if (p == std::string::npos || !src.is_ident(p, "operator")) {
        sink(i, "no-alloc-markers", "'new'");
      }
      continue;
    }
    if (kCalls.count(text) != 0) {
      const std::size_t paren = skip_template_args(src, i + 1);
      if (paren < src.tokens.size() && src.is_punct(paren, "(")) {
        sink(i, "no-alloc-markers", "'" + std::string(text) + "'");
      }
      continue;
    }
    if (kGrowth.count(text) != 0) {
      const std::size_t p = prev_on_line(src, i);
      const bool member =
          p != std::string::npos && (src.is_punct(p, ".") || src.is_punct(p, "->"));
      const std::size_t paren = skip_template_args(src, i + 1);
      if (member && paren < src.tokens.size() && src.is_punct(paren, "(")) {
        sink(i, "no-alloc-markers", "container growth '" + std::string(text) + "'");
      }
    }
  }
}

void detect_ambient_rng(const SourceFile& src, std::size_t begin, std::size_t end,
                        const DetectorSink& sink) {
  static const std::set<std::string, std::less<>> kTypes = {
      "random_device", "mt19937", "mt19937_64", "minstd_rand", "default_random_engine",
  };
  static const std::set<std::string, std::less<>> kCalls = {"rand", "srand", "drand48"};
  for (std::size_t i = begin; i < end && i < src.tokens.size(); ++i) {
    if (src.tokens[i].kind != Token::Kind::Ident) continue;
    const std::string_view text = src.text(src.tokens[i]);
    if (kTypes.count(text) != 0) {
      sink(i, "no-ambient-rng", "'" + std::string(text) + "'");
      continue;
    }
    if (kCalls.count(text) != 0 && adjacent_punct(src, i, "(")) {
      const std::size_t p = prev_on_line(src, i);
      const bool member =
          p != std::string::npos && (src.is_punct(p, ".") || src.is_punct(p, "->"));
      if (!member) sink(i, "no-ambient-rng", "'" + std::string(text) + "()'");
    }
  }
}

void detect_wallclock(const SourceFile& src, std::size_t begin, std::size_t end,
                      const DetectorSink& sink) {
  static const std::set<std::string, std::less<>> kBanned = {
      "system_clock",  "steady_clock",  "high_resolution_clock",
      "gettimeofday",  "clock_gettime", "timespec_get",
      // Host resource probes (peak RSS etc.) are observability, not sim
      // state — like wall timing they live behind allowlisted accessors.
      "getrusage",
  };
  for (std::size_t i = begin; i < end && i < src.tokens.size(); ++i) {
    if (src.tokens[i].kind != Token::Kind::Ident) continue;
    const std::string_view text = src.text(src.tokens[i]);
    if (kBanned.count(text) != 0) {
      sink(i, "no-wallclock", "'" + std::string(text) + "'");
      continue;
    }
    // Bare C `time(` / `clock(` calls: flag only expression-position
    // uses. Member access (`q.clock()`), qualified statics and
    // declarations (`const SimClock& clock() const`) are fine.
    if ((text == "time" || text == "clock") && adjacent_punct(src, i, "(")) {
      const std::size_t p = prev_on_line(src, i);
      const bool member =
          p != std::string::npos && (src.is_punct(p, ".") || src.is_punct(p, "->"));
      const bool call_position = p == std::string::npos || punct_in(src, p, ";{}(,=");
      bool std_qualified = false;
      if (p != std::string::npos && src.is_punct(p, "::")) {
        const std::size_t q = prev_on_line(src, p);
        std_qualified = q != std::string::npos && src.is_ident(q, "std");
      }
      if ((call_position && !member) || std_qualified) {
        sink(i, "no-wallclock", "'" + std::string(text) + "()'");
      }
    }
  }
}

// --- no-wallclock ---------------------------------------------------------
// Simulated time comes from sim::EventQueue; host wall time is reserved
// for the obs/ stage profiler and the sweep harness's wall metric (both
// explicitly outside the deterministic state). Anything else reading
// the machine clock makes behaviour depend on the host.
bool wallclock_applies(const std::string& path) {
  if (starts_with(path, "src/obs/")) return false;  // owns wall timing
  if (starts_with(path, "tools/")) return false;    // host-side CLIs
  return true;
}

namespace {

void rule_no_wallclock(const SourceFile& src, Emit& out) {
  detect_wallclock(src, 0, src.tokens.size(),
                   [&](std::size_t tok, const char* rule, std::string desc) {
                     emit(out, src, src.tokens[tok].line, rule,
                          desc + " reads the host clock; simulated time comes from "
                                 "sim::EventQueue");
                   });
}

}  // namespace

// --- no-ambient-rng -------------------------------------------------------
// All randomness flows through sim::Rng (seeded, forkable, recorded in
// BENCH json). Ambient engines make runs unrepeatable.
bool rng_applies(const std::string& path) {
  return path != "src/sim/random.h";  // the sanctioned engine lives here
}

namespace {

void rule_no_ambient_rng(const SourceFile& src, Emit& out) {
  detect_ambient_rng(src, 0, src.tokens.size(),
                     [&](std::size_t tok, const char* rule, std::string desc) {
                       emit(out, src, src.tokens[tok].line, rule,
                            desc + " is ambient randomness; seed a sim::Rng (or fork "
                                   "an existing one)");
                     });
}

// --- no-unordered-iteration ----------------------------------------------
// Iterating an unordered container visits elements in hash order, which
// varies across libstdc++ versions and salt — any simulation state or
// output derived from that order breaks bit-identical replays. Keyed
// lookups are fine; iteration in deterministic subsystems is not.
bool unordered_applies(const std::string& path) {
  static const std::vector<std::string> kScopes = {
      "src/sim/", "src/study/", "src/core/", "src/sensors/", "src/hw/", "src/wireless/",
      "src/host/",
  };
  return std::any_of(kScopes.begin(), kScopes.end(),
                     [&](const std::string& s) { return starts_with(path, s); });
}

void rule_no_unordered_iteration(const SourceFile& src, Emit& out) {
  // Pass 1: names declared with an unordered container type (template
  // argument lists may span lines — the token stream doesn't care).
  static const std::set<std::string, std::less<>> kTypes = {
      "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset",
  };
  std::set<std::string> unordered_vars;
  for (std::size_t i = 0; i < src.tokens.size(); ++i) {
    if (src.tokens[i].kind != Token::Kind::Ident) continue;
    if (kTypes.count(src.text(src.tokens[i])) == 0) continue;
    std::size_t p = skip_template_args(src, i + 1);
    while (p < src.tokens.size() && src.is_punct(p, "&")) ++p;
    if (p < src.tokens.size() && src.tokens[p].kind == Token::Kind::Ident) {
      unordered_vars.insert(std::string(src.text(src.tokens[p])));
    }
  }
  if (unordered_vars.empty()) return;

  // Pass 2: range-for over, or begin()/iterator walks of, those names.
  std::set<std::pair<std::uint32_t, std::string>> reported;
  for (std::size_t i = 0; i < src.tokens.size(); ++i) {
    if (src.tokens[i].kind != Token::Kind::Ident) continue;
    const std::string name(src.text(src.tokens[i]));
    if (unordered_vars.count(name) == 0) continue;
    const std::uint32_t line = src.tokens[i].line;

    bool begin_walk = false;
    if (i + 2 < src.tokens.size() &&
        (src.is_punct(i + 1, ".") || src.is_punct(i + 1, "->")) &&
        (src.is_ident(i + 2, "begin") || src.is_ident(i + 2, "cbegin"))) {
      begin_walk = true;
    }

    // Range-for on the same line: `for (… : name)` — a 'for' token and a
    // plain ':' before the name.
    bool range_for = false;
    std::size_t j = i;
    while (j > 0 && src.tokens[j - 1].line == line) --j;
    bool saw_for = false;
    for (std::size_t k = j; k < i; ++k) {
      if (src.is_ident(k, "for")) saw_for = true;
      if (saw_for && src.is_punct(k, ":")) range_for = true;
    }

    if ((range_for || begin_walk) && reported.emplace(line, name).second) {
      emit(out, src, line, "no-unordered-iteration",
           "iterating unordered container '" + name +
               "' visits hash order; use a sorted container or sort the keys first");
    }
  }
}

// --- no-std-function-hot-path --------------------------------------------
// std::function in a device-side header means a type-erased, possibly
// heap-backed callable on a per-sample path. util::FunctionRef is the
// sanctioned delegate; owning std::function belongs at setup-time
// boundaries only, each use justified with an allow().
bool stdfunction_applies(const std::string& path) {
  if (!is_header(path)) return false;
  static const std::vector<std::string> kScopes = {
      "src/hw/", "src/core/", "src/sensors/", "src/display/",
  };
  return std::any_of(kScopes.begin(), kScopes.end(),
                     [&](const std::string& s) { return starts_with(path, s); });
}

void rule_no_std_function(const SourceFile& src, Emit& out) {
  std::uint32_t last_line = UINT32_MAX;
  for (std::size_t i = 0; i + 2 < src.tokens.size(); ++i) {
    if (src.is_ident(i, "std") && src.is_punct(i + 1, "::") &&
        src.is_ident(i + 2, "function") && src.tokens[i].line != last_line) {
      last_line = src.tokens[i].line;
      emit(out, src, last_line, "no-std-function-hot-path",
           "std::function in a device-side header; use util::FunctionRef on sampling "
           "paths (allow() only for setup-time owners)");
    }
  }
}

// --- no-alloc-markers -----------------------------------------------------
// Regions bracketed DS_HOT_BEGIN/DS_HOT_END declare "steady-state
// allocation-free" (the claim util::AllocGuard pins at runtime). Flag
// lexical allocation markers inside them; amortised-growth lines that
// are provably warm-path-free carry an allow() with the reason. The
// cross-TU half of this rule — markers reachable FROM a region through
// the call graph — lives in the hot-path-reachability pass.
void rule_no_alloc_markers(const SourceFile& src, Emit& out) {
  for (const MarkerError& err : src.marker_errors) {
    emit(out, src, err.line, "no-alloc-markers", err.message);
  }
  for (const HotRegion& region : src.hot_regions) {
    detect_alloc_markers(src, region.begin_tok, region.end_tok,
                         [&](std::size_t tok, const char* rule, std::string desc) {
                           emit(out, src, src.tokens[tok].line, rule,
                                desc + " inside a DS_HOT region");
                         });
  }
}

// --- include-hygiene ------------------------------------------------------
// Headers must not drag in stream globals (<iostream> instantiates
// std::cout's init guard into every TU) and includes are root-relative
// (no "../" escapes — they break the single -I src include model).
void rule_include_hygiene(const SourceFile& src, Emit& out) {
  for (std::size_t li = 0; li < src.code.size(); ++li) {
    const std::string& code = src.code[li];
    const std::size_t hash = code.find_first_not_of(" \t");
    if (hash == std::string::npos || code[hash] != '#') continue;
    if (code.find("include", hash) == std::string::npos) continue;
    const std::string& raw = src.raw[li];  // the path lives in a "string"
    if (is_header(src.path) && raw.find("<iostream>") != std::string::npos) {
      emit(out, src, li, "include-hygiene",
           "<iostream> in a header drags stream init into every TU; include it in the "
           ".cpp");
    }
    if (raw.find("\"../") != std::string::npos) {
      emit(out, src, li, "include-hygiene",
           "parent-relative include; use a root-relative path (-I src)");
    }
  }
}

// --- pragma-once ----------------------------------------------------------
void rule_pragma_once(const SourceFile& src, Emit& out) {
  if (!is_header(src.path)) return;
  for (const std::string& line : src.code) {
    if (line.find("#pragma once") != std::string::npos) return;
  }
  if (!src.code.empty()) {
    emit(out, src, 0, "pragma-once", "header is missing '#pragma once'");
  }
}

bool always(const std::string&) { return true; }
bool never(const std::string&) { return false; }

}  // namespace

// Whole-program passes (defined in their own TUs).
void rule_include_layering(const FileIndex& index, Emit& out);
void rule_hot_path_reachability(const FileIndex& index, Emit& out);
void rule_concurrency_purity(const FileIndex& index, Emit& out);

const std::vector<Rule>& registry() {
  static const std::vector<Rule> kRules = {
      {"no-wallclock", "host clock reads outside obs/ wall-timing and tools/",
       wallclock_applies, rule_no_wallclock, nullptr},
      {"no-ambient-rng", "randomness not flowing through sim::Rng", rng_applies,
       rule_no_ambient_rng, nullptr},
      {"no-unordered-iteration", "hash-order iteration in deterministic subsystems",
       unordered_applies, rule_no_unordered_iteration, nullptr},
      {"no-std-function-hot-path",
       "std::function in device-side headers (util::FunctionRef is the delegate)",
       stdfunction_applies, rule_no_std_function, nullptr},
      {"no-alloc-markers",
       "allocation markers inside (or reachable from) DS_HOT regions",
       always, rule_no_alloc_markers, nullptr},
      {"include-hygiene", "<iostream> in headers; parent-relative includes", always,
       rule_include_hygiene, nullptr},
      {"pragma-once", "headers must use #pragma once", always, rule_pragma_once,
       nullptr},
      {"include-layering",
       "src/ module DAG: declared layer order, explicit allowed edges, no cycles",
       nullptr, nullptr, rule_include_layering},
      {"hot-path-reachability",
       "cross-TU walk from DS_HOT regions; findings carry the upgraded rule's name",
       nullptr, nullptr, rule_hot_path_reachability},
      {"concurrency-purity",
       "mutable namespace-scope/static state in ThreadPool-executed modules",
       nullptr, nullptr, rule_concurrency_purity},
      {"suppression-hygiene",
       "allow() comments must name a rule that fires here and carry a justification",
       never, nullptr, nullptr},  // implemented by the driver over raw findings
  };
  return kRules;
}

bool rule_exists(const std::string& name) {
  for (const Rule& rule : registry()) {
    if (name == rule.name) return true;
  }
  return false;
}

}  // namespace lint
