#include "lint/source.h"

#include <cctype>
#include <fstream>

namespace lint {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool is_header(const std::string& path) {
  return path.size() > 2 && path.compare(path.size() - 2, 2, ".h") == 0;
}

bool is_macro_name(std::string_view name) {
  bool saw_upper = false;
  for (const char c : name) {
    if (std::isupper(static_cast<unsigned char>(c)) != 0) {
      saw_upper = true;
    } else if (std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '_') {
      return false;
    }
  }
  return saw_upper;
}

namespace {

/// Parse allow(rule-a, rule-b) suppression directives out of a comment's
/// text. Returns the rule names and reports, via `has_reason`, whether
/// the comment carries any prose besides the directives themselves.
void harvest_allow(const std::string& comment, std::set<std::string>& out,
                   bool& has_reason) {
  const std::string key = "ds-lint:";
  std::string residue = comment;  // comment minus the directive spans
  std::size_t at = comment.find(key);
  while (at != std::string::npos) {
    std::size_t p = at + key.size();
    while (p < comment.size() && comment[p] == ' ') ++p;
    if (comment.compare(p, 6, "allow(") == 0) {
      p += 6;
      const std::size_t close = comment.find(')', p);
      if (close != std::string::npos) {
        std::string name;
        for (std::size_t i = p; i <= close; ++i) {
          const char c = comment[i];
          if (c == ',' || c == ')') {
            if (!name.empty()) out.insert(name);
            name.clear();
          } else if (c != ' ') {
            name.push_back(c);
          }
        }
        for (std::size_t i = at; i <= close && i < residue.size(); ++i) residue[i] = ' ';
      }
    }
    at = comment.find(key, at + key.size());
  }
  for (const char c : residue) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      has_reason = true;
      return;
    }
  }
}

/// Strip comments and string/char literals from `src.raw` into
/// `src.code`, preserving line structure; harvest suppression comments.
void strip(SourceFile& src) {
  src.code.resize(src.raw.size());
  src.allow_rules.resize(src.raw.size());

  enum class Mode { Code, Block, Str, Chr, RawStr };
  Mode mode = Mode::Code;
  std::string raw_delim;  // raw-string closing delimiter
  std::vector<std::string> comment_on(src.raw.size());

  for (std::size_t li = 0; li < src.raw.size(); ++li) {
    const std::string& s = src.raw[li];
    std::string& out = src.code[li];
    out.assign(s.size(), ' ');
    for (std::size_t i = 0; i < s.size(); ++i) {
      const char c = s[i];
      switch (mode) {
        case Mode::Code:
          if (c == '/' && i + 1 < s.size() && s[i + 1] == '/') {
            comment_on[li] += s.substr(i + 2);
            i = s.size();  // rest of line is comment
          } else if (c == '/' && i + 1 < s.size() && s[i + 1] == '*') {
            mode = Mode::Block;
            ++i;
          } else if (c == '"') {
            // R"delim( ... )delim" raw strings
            if (i >= 1 && s[i - 1] == 'R' && (i < 2 || !ident_char(s[i - 2]))) {
              const std::size_t open = s.find('(', i + 1);
              if (open != std::string::npos) {
                raw_delim = ")" + s.substr(i + 1, open - i - 1) + "\"";
                out[i] = '"';
                i = open;
                mode = Mode::RawStr;
                break;
              }
            }
            out[i] = '"';
            mode = Mode::Str;
          } else if (c == '\'' && !(i > 0 && ident_char(s[i - 1]))) {
            // char literal (not a digit separator like 10'000)
            out[i] = '\'';
            mode = Mode::Chr;
          } else {
            out[i] = c;
          }
          break;
        case Mode::Block: {
          const std::size_t close = s.find("*/", i);
          if (close == std::string::npos) {
            comment_on[li] += s.substr(i);
            i = s.size();
          } else {
            comment_on[li] += s.substr(i, close - i);
            i = close + 1;
            mode = Mode::Code;
          }
          break;
        }
        case Mode::Str:
          if (c == '\\') {
            ++i;
          } else if (c == '"') {
            out[i] = '"';
            mode = Mode::Code;
          }
          break;
        case Mode::Chr:
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            out[i] = '\'';
            mode = Mode::Code;
          }
          break;
        case Mode::RawStr: {
          const std::size_t close = s.find(raw_delim, i);
          if (close == std::string::npos) {
            i = s.size();
          } else {
            i = close + raw_delim.size() - 1;
            out[i] = '"';
            mode = Mode::Code;
          }
          break;
        }
      }
    }
  }

  // A suppression covers its own line and the line below (comment-above
  // style). Harvest after the full pass so block comments work too.
  for (std::size_t li = 0; li < comment_on.size(); ++li) {
    if (comment_on[li].empty()) continue;
    AllowSite site;
    site.line = static_cast<std::uint32_t>(li);
    harvest_allow(comment_on[li], site.rules, site.has_reason);
    if (site.rules.empty()) continue;
    src.allow_rules[li].insert(site.rules.begin(), site.rules.end());
    if (li + 1 < src.allow_rules.size()) {
      src.allow_rules[li + 1].insert(site.rules.begin(), site.rules.end());
    }
    src.allow_sites.push_back(std::move(site));
  }
}

/// Mark preprocessor lines (leading '#', plus backslash continuations)
/// and harvest quoted #include directives from the raw text.
void scan_preprocessor(SourceFile& src) {
  src.preprocessor.assign(src.raw.size(), false);
  bool continued = false;
  for (std::size_t li = 0; li < src.raw.size(); ++li) {
    bool pp = continued;
    const std::string& code = src.code[li];
    const std::size_t first = code.find_first_not_of(" \t");
    if (!pp && first != std::string::npos && code[first] == '#') pp = true;
    src.preprocessor[li] = pp;
    continued = pp && !src.raw[li].empty() && src.raw[li].back() == '\\';
    if (!pp || first == std::string::npos || code[first] != '#') continue;
    if (code.find("include", first) == std::string::npos) continue;
    // The quoted path was blanked in the code view; read it from raw.
    const std::string& raw = src.raw[li];
    const std::size_t open = raw.find('"');
    if (open == std::string::npos) continue;
    const std::size_t close = raw.find('"', open + 1);
    if (close == std::string::npos) continue;
    src.includes.push_back(
        IncludeDirective{raw.substr(open + 1, close - open - 1),
                         static_cast<std::uint32_t>(li)});
  }
}

/// Tokenise the code view into the shared stream (one lex per file —
/// every rule reads this). Preprocessor lines produce no tokens.
void lex(SourceFile& src) {
  for (std::size_t li = 0; li < src.code.size(); ++li) {
    if (src.preprocessor[li]) continue;
    const std::string& line = src.code[li];
    std::size_t i = 0;
    while (i < line.size()) {
      const char c = line[i];
      if (c == ' ' || c == '\t') {
        ++i;
        continue;
      }
      Token t;
      t.line = static_cast<std::uint32_t>(li);
      t.col = static_cast<std::uint16_t>(i);
      if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
        std::size_t j = i + 1;
        while (j < line.size() && ident_char(line[j])) ++j;
        t.kind = Token::Kind::Ident;
        t.len = static_cast<std::uint16_t>(j - i);
        i = j;
      } else if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        std::size_t j = i + 1;
        while (j < line.size() &&
               (ident_char(line[j]) || line[j] == '.' || line[j] == '\'' ||
                ((line[j] == '+' || line[j] == '-') &&
                 (line[j - 1] == 'e' || line[j - 1] == 'E' || line[j - 1] == 'p' ||
                  line[j - 1] == 'P')))) {
          ++j;
        }
        t.kind = Token::Kind::Number;
        t.len = static_cast<std::uint16_t>(j - i);
        i = j;
      } else {
        t.kind = Token::Kind::Punct;
        // Multi-char operators the rules care about: '::' and '->'.
        if (i + 1 < line.size() &&
            ((c == ':' && line[i + 1] == ':') || (c == '-' && line[i + 1] == '>'))) {
          t.len = 2;
          i += 2;
        } else {
          t.len = 1;
          ++i;
        }
      }
      src.tokens.push_back(t);
    }
  }
}

/// Pair DS_HOT_BEGIN/DS_HOT_END markers into token spans, collecting
/// nesting errors for the no-alloc-markers rule to report. The marker
/// macros' own `#define` lines never appear here — preprocessor lines
/// carry no tokens.
void extract_hot_regions(SourceFile& src) {
  bool hot = false;
  std::uint32_t begin_tok = 0;
  std::uint32_t begin_line = 0;
  for (std::size_t i = 0; i < src.tokens.size(); ++i) {
    const Token& t = src.tokens[i];
    if (t.kind != Token::Kind::Ident) continue;
    const std::string_view text = src.text(t);
    if (text == "DS_HOT_BEGIN") {
      if (hot) {
        src.marker_errors.push_back(
            MarkerError{t.line, "nested DS_HOT_BEGIN (missing DS_HOT_END?)"});
      }
      hot = true;
      begin_tok = static_cast<std::uint32_t>(i + 1);
      begin_line = t.line;
    } else if (text == "DS_HOT_END") {
      if (!hot) {
        src.marker_errors.push_back(MarkerError{t.line, "DS_HOT_END without DS_HOT_BEGIN"});
        continue;
      }
      src.hot_regions.push_back(
          HotRegion{begin_tok, static_cast<std::uint32_t>(i), begin_line});
      hot = false;
    }
  }
  if (hot) {
    const std::uint32_t last_line =
        src.code.empty() ? 0 : static_cast<std::uint32_t>(src.code.size() - 1);
    src.marker_errors.push_back(
        MarkerError{last_line, "DS_HOT_BEGIN region not closed by end of file"});
    src.hot_regions.push_back(
        HotRegion{begin_tok, static_cast<std::uint32_t>(src.tokens.size()), begin_line});
  }
}

}  // namespace

SourceFile load_source(const std::filesystem::path& abspath, std::string rel) {
  SourceFile src;
  src.path = std::move(rel);
  std::ifstream in(abspath);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    src.raw.push_back(line);
  }
  strip(src);
  scan_preprocessor(src);
  lex(src);
  extract_hot_regions(src);
  return src;
}

}  // namespace lint
