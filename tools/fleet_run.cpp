// fleet_run: drive a streaming fleet population study from the command
// line — the operational face of study::run_fleet (the bench
// exp_fleet_population is the measured face).
//
// Usage:
//   fleet_run [--participants N] [--trials N] [--menu N] [--seed S]
//             [--threads N] [--chunk N] [--window N] [--scalar]
//             [--checkpoint PATH] [--checkpoint-every N] [--resume]
//             [--stop-after N]
//
// --checkpoint PATH writes a versioned binary checkpoint at every
// window where --checkpoint-every participants have elapsed (and always
// at exit), so a killed run loses at most one window. --resume loads
// PATH and continues from its cursor; the finished aggregates are
// byte-identical to an uninterrupted run (the fleet determinism
// contract, see DESIGN.md §12). --stop-after N folds only the first N
// participants (rounded up to a chunk) and exits — the manual way to
// produce a resumable half-run.
//
// Exit codes: 0 = ran (complete or stopped as asked), 1 = bad resume
// file / unwritable checkpoint, 64 = malformed command line.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "study/fleet_study.h"
#include "study/sweep_runner.h"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitFail = 1;
constexpr int kExitUsage = 64;

/// Strict uint64 parse: whole argument, no sign, no suffix.
bool parse_u64(const char* text, std::uint64_t& out) {
  if (text == nullptr || *text == '\0' || *text == '-') return false;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  out = static_cast<std::uint64_t>(value);
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: fleet_run [--participants N] [--trials N] [--menu N] [--seed S]\n"
               "                 [--threads N] [--chunk N] [--window N] [--scalar]\n"
               "                 [--checkpoint PATH] [--checkpoint-every N] [--resume]\n"
               "                 [--stop-after N]\n");
  return kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  using distscroll::study::FleetStudyConfig;

  FleetStudyConfig config;
  std::uint64_t stop_after = distscroll::study::kFleetRunAll;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next_u64 = [&](std::uint64_t& out) {
      return i + 1 < argc && parse_u64(argv[++i], out);
    };
    std::uint64_t value = 0;
    if (std::strcmp(arg, "--participants") == 0) {
      if (!next_u64(config.participants)) return usage();
    } else if (std::strcmp(arg, "--trials") == 0) {
      if (!next_u64(value) || value == 0) return usage();
      config.trials_per_participant = static_cast<std::uint32_t>(value);
    } else if (std::strcmp(arg, "--menu") == 0) {
      if (!next_u64(value) || value < 2) return usage();
      config.menu_size = static_cast<std::uint32_t>(value);
    } else if (std::strcmp(arg, "--seed") == 0) {
      if (!next_u64(config.base_seed)) return usage();
    } else if (std::strcmp(arg, "--threads") == 0) {
      if (!next_u64(value)) return usage();
      config.threads = static_cast<std::size_t>(value);
    } else if (std::strcmp(arg, "--chunk") == 0) {
      if (!next_u64(value) || value == 0) return usage();
      config.chunk = value;
    } else if (std::strcmp(arg, "--window") == 0) {
      if (!next_u64(value) || value == 0) return usage();
      config.window_chunks = static_cast<std::size_t>(value);
    } else if (std::strcmp(arg, "--scalar") == 0) {
      config.batched = false;
    } else if (std::strcmp(arg, "--checkpoint") == 0) {
      if (i + 1 >= argc) return usage();
      config.checkpoint_path = argv[++i];
    } else if (std::strcmp(arg, "--checkpoint-every") == 0) {
      if (!next_u64(config.checkpoint_every)) return usage();
    } else if (std::strcmp(arg, "--resume") == 0) {
      config.resume = true;
    } else if (std::strcmp(arg, "--stop-after") == 0) {
      if (!next_u64(stop_after)) return usage();
    } else {
      std::fprintf(stderr, "fleet_run: unknown argument '%s'\n", arg);
      return usage();
    }
  }
  if (config.resume && config.checkpoint_path.empty()) {
    std::fprintf(stderr, "fleet_run: --resume needs --checkpoint PATH\n");
    return usage();
  }

  const double t0 = distscroll::study::sweep_wall_clock_s();
  const auto result = distscroll::study::run_fleet(config, stop_after);
  const double wall_s = distscroll::study::sweep_wall_clock_s() - t0;

  if (result.status != distscroll::util::CheckpointStatus::Ok) {
    std::fprintf(stderr, "fleet_run: %s\n", result.error.c_str());
    return kExitFail;
  }

  const auto& agg = result.aggregates;
  const double folded = static_cast<double>(result.cursor - result.resumed_from);
  std::printf("fleet_run: %" PRIu64 "/%" PRIu64 " participants folded%s (%s body, %zu threads, "
              "%.2f s, %.0f participants/s)\n",
              result.cursor, config.participants, result.resumed ? " [resumed]" : "",
              config.batched ? "batched" : "scalar",
              distscroll::study::resolve_sweep_threads(config.threads),
              wall_s, wall_s > 0.0 ? folded / wall_s : 0.0);
  if (agg.trials() > 0) {
    const double trials = static_cast<double>(agg.trials());
    std::printf("  trials %" PRIu64 "  success %.4f  wrong/trial %.4f  overshoot/trial %.3f\n",
                agg.trials(), static_cast<double>(agg.successes()) / trials,
                static_cast<double>(agg.wrong_selections()) / trials,
                static_cast<double>(agg.overshoots()) / trials);
    std::printf("  time[s] mean %.3f sd %.3f  p50 %.3f  p90 %.3f  p99 %.3f  max %.3f\n",
                agg.time_s().mean(), agg.time_s().stddev(), agg.time_sketch().quantile(0.50),
                agg.time_sketch().quantile(0.90), agg.time_sketch().quantile(0.99),
                agg.time_s().max());
    std::printf("  throughput[bits/s] mean %.3f  expertise mean %.3f\n",
                agg.throughput_bits_s().mean(), agg.expertise().mean());
    std::printf("  gloves none/thin/thick %" PRIu64 "/%" PRIu64 "/%" PRIu64 "\n",
                agg.glove_counts()[0], agg.glove_counts()[1], agg.glove_counts()[2]);
  }
  if (!result.complete) {
    std::printf("  stopped at a chunk boundary; resume with --resume --checkpoint %s\n",
                config.checkpoint_path.empty() ? "<path>" : config.checkpoint_path.c_str());
  }
  return kExitOk;
}
