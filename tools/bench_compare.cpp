// bench_compare: gate the perf trajectory on the committed BENCH_*.json
// baselines.
//
// Usage:
//   bench_compare <baseline_dir> [<fresh_dir>] [--tolerance <factor>] [--allow-missing]
//
// For every BENCH_<name>.json in <baseline_dir> the tool loads the
// fresh report of the same name from <fresh_dir> (default ".") and
// checks:
//   * the fresh run kept the determinism contract (bit_identical);
//   * the fresh sequential wall clock is no worse than
//     baseline * tolerance (default 1.25 — wall clocks on shared CI
//     machines are noisy; the gate is for real regressions, not jitter).
//
// When both reports carry a batched pass (batch_width > 0) the gate
// additionally checks that the fresh batched run kept bit-identity with
// the scalar reference and that its wall clock is no worse than
// baseline * tolerance. Baselines written before the batched pass
// existed simply lack the fields and gate the scalar numbers only.
//
// Reports carrying peak_rss_bytes additionally gate memory against
// baseline * tolerance, and streaming-fleet reports
// (fleet_participants > 0) gate fleet wall clock, thread-count
// bit-identity, checkpoint/resume bit-identity and RSS flatness
// (growth ratio <= 1.10). Host-ingest reports (host_devices > 0) gate
// thread-count bit-identity, throughput (host_frames_per_s, LOWER is
// worse: fresh must stay above baseline / tolerance) and the overload
// drop rate (HIGHER is worse: fresh must stay below
// baseline * tolerance). Older baselines lack the fields and skip
// those gates.
//
// Exit codes: 0 = all gates passed, 1 = regression or unreadable
// report, 64 = malformed command line (e.g. an unparseable
// --tolerance), 77 = environment not comparable (hardware thread count
// or tracing build flavour differs from the baseline's) — wired into
// ctest as SKIP_RETURN_CODE so a laptop checkout doesn't fail the
// `perf` label against CI-recorded baselines.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace {

constexpr int kExitOk = 0;
constexpr int kExitFail = 1;
constexpr int kExitUsage = 64;  // EX_USAGE: malformed command line
constexpr int kExitSkip = 77;

/// Fleet runs must keep peak RSS flat (within 10%) relative to their
/// small-run baseline — the O(aggregates) memory contract.
constexpr double kFleetRssFlatLimit = 1.10;

struct Report {
  std::string name;
  double sequential_wall_s = 0.0;
  double hardware_threads = 0.0;
  bool bit_identical = false;
  bool tracing_compiled = false;
  // Batched-pass fields; absent in pre-batch baselines.
  double batch_width = 0.0;
  double batched_wall_s = 0.0;
  bool batch_bit_identical = true;
  // Memory + streaming-fleet fields; absent in older baselines.
  double peak_rss_bytes = 0.0;
  double fleet_participants = 0.0;
  double fleet_wall_s = 0.0;
  bool fleet_bit_identical = true;
  bool fleet_resume_bit_identical = true;
  double fleet_rss_growth = 0.0;
  // Host-ingest fields; absent in baselines predating the pipeline.
  double host_devices = 0.0;
  double host_frames_per_s = 0.0;
  double host_drop_rate = 0.0;
  bool host_bit_identical = true;
};

/// First top-level `"key": <number|bool>` occurrence. The BENCH format
/// is flat with one nested "metrics" object whose keys never collide
/// with the ones this tool reads.
std::optional<double> find_number(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) return std::nullopt;
  const char* cursor = json.c_str() + at + needle.size();
  while (*cursor == ' ') ++cursor;
  if (std::strncmp(cursor, "true", 4) == 0) return 1.0;
  if (std::strncmp(cursor, "false", 5) == 0) return 0.0;
  char* end = nullptr;
  const double value = std::strtod(cursor, &end);
  if (end == cursor) return std::nullopt;
  return value;
}

std::optional<Report> load_report(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();

  Report report;
  const auto wall = find_number(json, "sequential_wall_s");
  const auto hw = find_number(json, "hardware_threads");
  const auto bit = find_number(json, "bit_identical");
  const auto tracing = find_number(json, "tracing_compiled");
  if (!wall || !hw || !bit || !tracing) return std::nullopt;
  report.name = path.filename().string();
  report.sequential_wall_s = *wall;
  report.hardware_threads = *hw;
  report.bit_identical = *bit != 0.0;
  report.tracing_compiled = *tracing != 0.0;
  // Optional batched-pass fields. find_number matches the exact quoted
  // key, so "batch_bit_identical" cannot collide with "bit_identical".
  report.batch_width = find_number(json, "batch_width").value_or(0.0);
  report.batched_wall_s = find_number(json, "batched_wall_s").value_or(0.0);
  report.batch_bit_identical = find_number(json, "batch_bit_identical").value_or(1.0) != 0.0;
  report.peak_rss_bytes = find_number(json, "peak_rss_bytes").value_or(0.0);
  report.fleet_participants = find_number(json, "fleet_participants").value_or(0.0);
  report.fleet_wall_s = find_number(json, "fleet_wall_s").value_or(0.0);
  report.fleet_bit_identical = find_number(json, "fleet_bit_identical").value_or(1.0) != 0.0;
  report.fleet_resume_bit_identical =
      find_number(json, "fleet_resume_bit_identical").value_or(1.0) != 0.0;
  report.fleet_rss_growth = find_number(json, "fleet_rss_growth").value_or(0.0);
  report.host_devices = find_number(json, "host_devices").value_or(0.0);
  report.host_frames_per_s = find_number(json, "host_frames_per_s").value_or(0.0);
  report.host_drop_rate = find_number(json, "host_drop_rate").value_or(0.0);
  report.host_bit_identical = find_number(json, "host_bit_identical").value_or(1.0) != 0.0;
  return report;
}

/// Strict double parse: the whole argument must be consumed. Rejects
/// locale-shaped ("1,6") and suffixed ("1.6x") inputs that atof would
/// silently truncate to a wrong gate.
std::optional<double> parse_full_double(const char* text) {
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0') return std::nullopt;
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_dir;
  std::string fresh_dir = ".";
  double tolerance = 1.25;
  // The ctest smoke gate regenerates ONE representative bench and
  // compares just that; baselines with no fresh report then count as
  // skipped instead of failing.
  bool allow_missing = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      const char* text = argv[++i];
      const auto parsed = parse_full_double(text);
      if (!parsed || !(*parsed > 0.0)) {
        std::fprintf(stderr,
                     "bench_compare: invalid --tolerance '%s' (expect a positive number, "
                     "e.g. 1.25)\n",
                     text);
        return kExitUsage;
      }
      tolerance = *parsed;
    } else if (std::strcmp(argv[i], "--allow-missing") == 0) {
      allow_missing = true;
    } else {
      positional.emplace_back(argv[i]);
    }
  }
  if (positional.empty()) {
    std::fprintf(stderr,
                 "usage: bench_compare <baseline_dir> [<fresh_dir>] [--tolerance <factor>]\n");
    return kExitUsage;
  }
  baseline_dir = positional[0];
  if (positional.size() > 1) fresh_dir = positional[1];

  int compared = 0, failed = 0, skipped = 0;
  for (const auto& entry : std::filesystem::directory_iterator(baseline_dir)) {
    const std::string file = entry.path().filename().string();
    if (file.rfind("BENCH_", 0) != 0 || entry.path().extension() != ".json") continue;

    const auto baseline = load_report(entry.path());
    if (!baseline) {
      std::fprintf(stderr, "[fail] %s: unreadable baseline\n", file.c_str());
      ++failed;
      continue;
    }
    const auto fresh = load_report(std::filesystem::path(fresh_dir) / file);
    if (!fresh) {
      if (allow_missing) {
        std::printf("[skip] %s: no fresh report in %s\n", file.c_str(), fresh_dir.c_str());
        ++skipped;
      } else {
        std::fprintf(stderr, "[fail] %s: no fresh report in %s (run the exp_* benches first)\n",
                     file.c_str(), fresh_dir.c_str());
        ++failed;
      }
      continue;
    }
    if (fresh->hardware_threads != baseline->hardware_threads ||
        fresh->tracing_compiled != baseline->tracing_compiled) {
      std::printf("[skip] %s: environment differs (hw threads %.0f vs %.0f, tracing %d vs %d)\n",
                  file.c_str(), fresh->hardware_threads, baseline->hardware_threads,
                  fresh->tracing_compiled ? 1 : 0, baseline->tracing_compiled ? 1 : 0);
      ++skipped;
      continue;
    }
    ++compared;
    if (!fresh->bit_identical) {
      std::fprintf(stderr, "[fail] %s: parallel results diverged from sequential\n",
                   file.c_str());
      ++failed;
      continue;
    }
    if (fresh->batch_width > 0.0 && !fresh->batch_bit_identical) {
      std::fprintf(stderr, "[fail] %s: batched results diverged from sequential\n",
                   file.c_str());
      ++failed;
      continue;
    }
    const double limit = baseline->sequential_wall_s * tolerance;
    if (fresh->sequential_wall_s > limit) {
      std::fprintf(stderr, "[fail] %s: sequential %.3fs exceeds baseline %.3fs x %.2f = %.3fs\n",
                   file.c_str(), fresh->sequential_wall_s, baseline->sequential_wall_s,
                   tolerance, limit);
      ++failed;
      continue;
    }
    if (baseline->batch_width > 0.0 && fresh->batch_width > 0.0) {
      const double batch_limit = baseline->batched_wall_s * tolerance;
      if (fresh->batched_wall_s > batch_limit) {
        std::fprintf(stderr,
                     "[fail] %s: batched %.3fs exceeds baseline %.3fs x %.2f = %.3fs\n",
                     file.c_str(), fresh->batched_wall_s, baseline->batched_wall_s, tolerance,
                     batch_limit);
        ++failed;
        continue;
      }
    }
    // Streaming-fleet gates: bit-identity across thread counts and
    // across checkpoint/resume are hard failures; the fleet wall clock
    // gates like the other wall clocks; the RSS growth ratio is the
    // bench's O(aggregates)-memory contract (flat within 10%).
    if (fresh->fleet_participants > 0.0) {
      if (!fresh->fleet_bit_identical) {
        std::fprintf(stderr, "[fail] %s: fleet aggregates diverged across thread counts\n",
                     file.c_str());
        ++failed;
        continue;
      }
      if (!fresh->fleet_resume_bit_identical) {
        std::fprintf(stderr, "[fail] %s: fleet checkpoint/resume diverged from the full run\n",
                     file.c_str());
        ++failed;
        continue;
      }
      if (baseline->fleet_participants > 0.0) {
        const double fleet_limit = baseline->fleet_wall_s * tolerance;
        if (fresh->fleet_wall_s > fleet_limit) {
          std::fprintf(stderr, "[fail] %s: fleet %.3fs exceeds baseline %.3fs x %.2f = %.3fs\n",
                       file.c_str(), fresh->fleet_wall_s, baseline->fleet_wall_s, tolerance,
                       fleet_limit);
          ++failed;
          continue;
        }
      }
      if (fresh->fleet_rss_growth > kFleetRssFlatLimit) {
        std::fprintf(stderr,
                     "[fail] %s: fleet peak RSS grew %.3fx over the small-run baseline "
                     "(flatness limit %.2fx)\n",
                     file.c_str(), fresh->fleet_rss_growth, kFleetRssFlatLimit);
        ++failed;
        continue;
      }
    }
    // Host-ingest gates: thread-count bit-identity (DSTL bytes +
    // metrics JSON) is a hard failure; throughput gates LOWER-is-worse
    // (frames/s dropping below baseline / tolerance); the overload drop
    // rate gates HIGHER-is-worse, with an epsilon so a baseline of
    // exactly 0 still tolerates float noise.
    if (fresh->host_devices > 0.0) {
      if (!fresh->host_bit_identical) {
        std::fprintf(stderr, "[fail] %s: host ingest diverged across thread counts\n",
                     file.c_str());
        ++failed;
        continue;
      }
      if (baseline->host_devices > 0.0) {
        const double floor = baseline->host_frames_per_s / tolerance;
        if (fresh->host_frames_per_s < floor) {
          std::fprintf(stderr,
                       "[fail] %s: host %.0f frames/s below baseline %.0f / %.2f = %.0f\n",
                       file.c_str(), fresh->host_frames_per_s, baseline->host_frames_per_s,
                       tolerance, floor);
          ++failed;
          continue;
        }
        const double drop_limit = baseline->host_drop_rate * tolerance + 1e-9;
        if (fresh->host_drop_rate > drop_limit) {
          std::fprintf(stderr,
                       "[fail] %s: host drop rate %.6f exceeds baseline %.6f x %.2f\n",
                       file.c_str(), fresh->host_drop_rate, baseline->host_drop_rate, tolerance);
          ++failed;
          continue;
        }
      }
    }
    // Peak-RSS trajectory: same tolerance philosophy as the wall
    // clocks. Absent fields (0) in either report skip the gate.
    if (baseline->peak_rss_bytes > 0.0 && fresh->peak_rss_bytes > 0.0) {
      const double rss_limit = baseline->peak_rss_bytes * tolerance;
      if (fresh->peak_rss_bytes > rss_limit) {
        std::fprintf(stderr,
                     "[fail] %s: peak RSS %.0f bytes exceeds baseline %.0f x %.2f = %.0f\n",
                     file.c_str(), fresh->peak_rss_bytes, baseline->peak_rss_bytes, tolerance,
                     rss_limit);
        ++failed;
        continue;
      }
    }
    std::printf("[ ok ] %s: sequential %.3fs vs baseline %.3fs (limit %.3fs)\n", file.c_str(),
                fresh->sequential_wall_s, baseline->sequential_wall_s, limit);
  }

  std::printf("bench_compare: %d compared, %d failed, %d skipped\n", compared, failed, skipped);
  if (failed > 0) return kExitFail;
  if (compared == 0) return skipped > 0 ? kExitSkip : kExitFail;
  return kExitOk;
}
